"""Section 5.1.3: real-time databases as timed ω-languages.

Constructions implemented:

* ``db_0``  — invariant and derived objects, all at time 0;
* ``db_k``  — the sampling stream of one image object o_k, one encoded
  block every t_k chronons;
* ``db_B = db_0 db_1 … db_r``  — eq. (6), via Definition 3.5
  concatenation;
* ``aq_[q,s,t]``  — an aperiodic query issued at time t with no / firm /
  soft deadline (the Section 4.1 shapes relocated to time t, with
  per-query markers w_q, d_q);
* ``pq_[q,s,t,t_p]`` — a periodic query as the infinite concatenation
  of aq words, built directly as a lazy time-merged stream;
* :func:`lemma51_bound` — the k′ bound of Lemma 5.1, checked against
  the constructed pq words by experiment E8.

Encoding conventions (the paper's enc / enc_q, with disjoint
codomains realized by tagging): database symbols are ``("db", ch)``,
query symbols ``("q", ch)``, the separator is ``"$"``, and the
per-query wait/deadline markers are ``("wq", t)`` / ``("dq", t)``
(distinct symbols per issue time, as Lemma 5.1's w_x, d_x indexing
requires).
"""

from __future__ import annotations


from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..deadlines.spec import DeadlineKind, DeadlineSpec
from ..words.concat import concat_many
from ..words.timedword import Pair, TimedWord

__all__ = [
    "SEP",
    "enc_value_block",
    "db0_word",
    "dbk_word",
    "db_B_word",
    "aq_word",
    "pq_word",
    "lemma51_bound",
    "enc_query_header",
]

SEP = "$"


def _db_chars(text: str) -> List[Any]:
    return [("db", ch) for ch in text]


def _q_chars(text: str) -> List[Any]:
    return [("q", ch) for ch in text]


def enc_value_block(name: str, value: Any) -> List[Any]:
    """enc of one object reading: the characters of "name=value" + $."""
    return _db_chars(f"{name}={value!r}") + [SEP]


# ----------------------------------------------------------------------
# db_0 and db_k
# ----------------------------------------------------------------------

def db0_word(
    invariants: Dict[str, Any],
    derived: Dict[str, Sequence[str]],
) -> TimedWord:
    """db₀: enc(V) $ enc(D) $ — everything at time 0.

    Invariants are encoded with their values; derived objects with
    their source lists (their *functions* are part of the fixed query
    apparatus, as data complexity fixes the query and varies the data).
    """
    pairs: List[Pair] = []
    for name in sorted(invariants):
        pairs.extend((s, 0) for s in enc_value_block(name, invariants[name]))
    pairs.append((SEP, 0))
    for name in sorted(derived):
        spec = ",".join(derived[name])
        pairs.extend((s, 0) for s in _db_chars(f"{name}<-{spec}") + [SEP])
    pairs.append((SEP, 0))
    return TimedWord.finite(pairs)


def dbk_word(
    name: str,
    period: int,
    values: Callable[[int], Any],
) -> TimedWord:
    """db_k: one encoded reading of image object ``name`` per period.

    Block i carries enc(o_k(t_i)) with every symbol stamped i·t_k
    (the paper's τ_j = i·t_k for the whole block).  The word is
    functional because the sampled values need not be periodic.
    """
    if period <= 0:
        raise ValueError("sampling period must be positive")
    # Cache per-block encodings; block lengths may vary with the value.
    blocks: List[List[Any]] = []
    offsets: List[int] = [0]

    def ensure_block(i: int) -> None:
        while len(blocks) <= i:
            b = enc_value_block(name, values(len(blocks) * period))
            blocks.append(b)
            offsets.append(offsets[-1] + len(b))

    def fn(j: int) -> Pair:
        # find the block containing global index j
        i = 0
        ensure_block(0)
        while offsets[len(blocks)] <= j:
            ensure_block(len(blocks))
        # binary search over offsets
        import bisect

        i = bisect.bisect_right(offsets, j) - 1
        sym = blocks[i][j - offsets[i]]
        return (sym, i * period)

    return TimedWord.functional(fn)


def db_B_word(
    invariants: Dict[str, Any],
    derived: Dict[str, Sequence[str]],
    images: Dict[str, Tuple[int, Callable[[int], Any]]],
) -> TimedWord:
    """db_B = db₀ db₁ … db_r  (eq. (6)), Definition 3.5 concatenation.

    ``images`` maps object name → (period t_k, value function).
    """
    words = [db0_word(invariants, derived)]
    for name in sorted(images):
        period, values = images[name]
        words.append(dbk_word(name, period, values))
    return concat_many(words)


# ----------------------------------------------------------------------
# query words
# ----------------------------------------------------------------------

def enc_query_header(
    query_name: str,
    candidate: Tuple[Any, ...],
    issue_time: int,
    min_acceptable: Optional[int],
) -> List[Any]:
    """The header block of aq: [min_acc] enc_q(s) $ enc_q(q) $."""
    header: List[Any] = []
    if min_acceptable is not None:
        header.append(min_acceptable)
    header.extend(_q_chars(repr(candidate)))
    header.append(SEP)
    header.extend(_q_chars(f"{query_name}@{issue_time}"))
    header.append(SEP)
    return header


def aq_word(
    query_name: str,
    candidate: Tuple[Any, ...],
    issue_time: int,
    spec: DeadlineSpec,
) -> TimedWord:
    """aq_[q,s,t]: the Section 5.1.3 aperiodic-query word.

    Mirrors the Section 4.1 cases, with every timestamp offset by the
    issue time t and per-query markers ("wq", t) / ("dq", t).
    """
    t = issue_time
    wq, dq = ("wq", t), ("dq", t)
    min_acc = None if spec.kind is DeadlineKind.NONE else spec.min_acceptable
    header = enc_query_header(query_name, candidate, t, min_acc)
    prefix: List[Pair] = [(s, t) for s in header]

    if spec.kind is DeadlineKind.NONE:
        return TimedWord.lasso(prefix=prefix, loop=[(wq, t + 1)], shift=1)

    t_d = spec.t_d
    assert t_d is not None
    deadline_at = t + t_d  # the paper: "the moment … is t + t_d"
    prefix.extend((wq, tt) for tt in range(t + 1, deadline_at))

    if spec.kind is DeadlineKind.FIRM:
        return TimedWord.lasso(
            prefix=prefix, loop=[(dq, deadline_at), (0, deadline_at)], shift=1
        )

    assert spec.usefulness is not None
    t_stable = max(deadline_at, spec.usefulness.stable_after(deadline_at))
    for tt in range(deadline_at, t_stable):
        prefix.append((dq, tt))
        prefix.append((int(spec.usefulness(tt)), tt))
    stable = int(spec.usefulness(t_stable))
    return TimedWord.lasso(
        prefix=prefix, loop=[(dq, t_stable), (stable, t_stable)], shift=1
    )


def pq_word(
    query_name: str,
    candidates: Callable[[int], Tuple[Any, ...]],
    issue_time: int,
    period: int,
    spec_for: Callable[[int], DeadlineSpec],
) -> TimedWord:
    """pq_[q,s,t,t_p] = aq_[q,s₁,t] aq_[q,s₂,t+t_p] …  (lazy merge).

    ``candidates(i)`` is the tuple s_i of the i-th invocation (1-based);
    ``spec_for(i)`` its deadline class.  The infinite concatenation is
    built directly as the time-ordered merge with earlier invocations
    winning ties (Definition 3.5 applied left to right); Lemma 5.1
    guarantees the result is well-behaved, which experiment E8 checks
    against :func:`lemma51_bound`.
    """
    if period <= 0:
        raise ValueError("query period must be positive")

    streams: List[Iterator[Pair]] = []
    heads: List[Optional[Pair]] = []

    def open_stream(i: int) -> Iterator[Pair]:
        w = aq_word(query_name, candidates(i), issue_time + (i - 1) * period, spec_for(i))
        j = 0
        while True:
            yield w[j]
            j += 1

    def ensure_streams(upto_time: int) -> None:
        # Invocation i is issued at issue_time + (i-1)·period.
        while issue_time + len(streams) * period <= upto_time:
            it = open_stream(len(streams) + 1)
            streams.append(it)
            heads.append(next(it))

    cache: List[Pair] = []

    def produce_next() -> Pair:
        # Always make sure every stream whose first symbol could be the
        # minimum is open: a new invocation's symbols start at its issue
        # time, so opening streams up to the current best time suffices.
        ensure_streams(issue_time)
        while True:
            best_idx = -1
            for idx, head in enumerate(heads):
                if head is None:
                    continue
                if best_idx < 0 or head[1] < heads[best_idx][1]:  # type: ignore[index]
                    best_idx = idx
            assert best_idx >= 0
            best_time = heads[best_idx][1]  # type: ignore[index]
            before = len(streams)
            ensure_streams(best_time)
            if len(streams) == before:
                break
        pair = heads[best_idx]  # type: ignore[assignment]
        heads[best_idx] = next(streams[best_idx])
        return pair  # type: ignore[return-value]

    def fn(j: int) -> Pair:
        while len(cache) <= j:
            cache.append(produce_next())
        return cache[j]

    return TimedWord.functional(fn)


def lemma51_bound(k: int, issue_time: int, period: int, header_len: int) -> int:
    """The Lemma 5.1 index bound: symbols with τ_j < k number at most
    (i+1)·|enc_q(q)$enc_q(s)$| + 2·k·i, where i counts the invocations
    issued before time k."""
    if k <= issue_time:
        i = 0
    else:
        i = (k - issue_time) // period
    return (i + 1) * header_len + 2 * k * max(i, 1)
