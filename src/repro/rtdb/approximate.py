"""Anytime (approximate) query processing — after Vrbsky [34].

The paper's §5.1.2 data model is taken from "A data model for
approximate query processing of real-time databases": when a deadline
arrives before a query completes, the system returns an *approximate*
answer that improves monotonically with computation time.

:class:`AnytimeEvaluator` executes a relational-algebra query as a
tuple-at-a-time pipeline with a chronon budget: each consumed input
tuple costs one work unit, and stopping early yields the answer over
the consumed prefix.  For monotone (select-project-join-union) queries
that prefix answer is a **subset** of the exact answer — the
certainty guarantee Vrbsky's model provides — and its size grows
monotonically with the budget (both properties are tested).

Non-monotone operators (difference) are rejected: a prefix answer
could contain tuples the full answer retracts, which breaks the
approximation contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from .algebra import (
    NaturalJoin,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from .relational import DatabaseInstance

__all__ = ["ApproximateAnswer", "AnytimeEvaluator", "NonMonotoneQueryError"]


class NonMonotoneQueryError(ValueError):
    """The query contains an operator without the subset guarantee."""


@dataclass
class ApproximateAnswer:
    """A partial answer with its quality metadata."""

    tuples: Set[Tuple[Any, ...]]
    consumed: int  # input tuples consumed
    total_inputs: int  # input tuples the full evaluation would consume
    exhausted: bool  # True when the budget covered everything

    @property
    def completeness(self) -> float:
        """Fraction of the input actually consumed (1.0 = exact)."""
        if self.total_inputs == 0:
            return 1.0
        return min(1.0, self.consumed / self.total_inputs)

    def recall_against(self, exact: Set[Tuple[Any, ...]]) -> float:
        """|approx ∩ exact| / |exact| (1.0 when exact is empty)."""
        if not exact:
            return 1.0
        return len(self.tuples & exact) / len(exact)


def _check_monotone(query: Query) -> None:
    if isinstance(query, Relation):
        return
    if isinstance(query, (Selection, Projection, Rename)):
        _check_monotone(query.source)
        return
    if isinstance(query, (NaturalJoin, Product)):
        _check_monotone(query.left)
        _check_monotone(query.right)
        return
    if isinstance(query, Union):
        _check_monotone(query.left)
        _check_monotone(query.right)
        return
    raise NonMonotoneQueryError(
        f"{type(query).__name__} breaks the subset guarantee (Vrbsky model)"
    )


class AnytimeEvaluator:
    """Budgeted evaluation of a monotone query.

    The input prefix is taken in the deterministic canonical order of
    each base relation; ``evaluate(budget)`` consumes up to ``budget``
    base tuples (across all base relations, round-robin by relation
    name) and evaluates the query on the consumed sub-instance.
    """

    def __init__(self, query: Query, db: DatabaseInstance):
        _check_monotone(query)
        self.query = query
        self.db = db
        self._base_names = sorted(self._bases(query))
        self._streams: Dict[str, List] = {
            name: [row.values for row in db[name]] for name in self._base_names
        }
        self.total_inputs = sum(len(rows) for rows in self._streams.values())

    def _bases(self, query: Query) -> Set[str]:
        if isinstance(query, Relation):
            return {query.name}
        if isinstance(query, (Selection, Projection, Rename)):
            return self._bases(query.source)
        return self._bases(query.left) | self._bases(query.right)  # type: ignore[attr-defined]

    def _sub_instance(self, budget: int) -> Tuple[DatabaseInstance, int]:
        """The database restricted to the first ``budget`` tuples,
        round-robin across base relations."""
        sub = DatabaseInstance(self.db.schema)
        cursors = {name: 0 for name in self._base_names}
        consumed = 0
        progressing = True
        while consumed < budget and progressing:
            progressing = False
            for name in self._base_names:
                if consumed >= budget:
                    break
                idx = cursors[name]
                rows = self._streams[name]
                if idx < len(rows):
                    sub.insert(name, rows[idx])
                    cursors[name] = idx + 1
                    consumed += 1
                    progressing = True
        return sub, consumed

    def evaluate(self, budget: int) -> ApproximateAnswer:
        """The prefix answer under ``budget`` consumed input tuples."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        sub, consumed = self._sub_instance(budget)
        result = self.query.evaluate(sub)
        return ApproximateAnswer(
            tuples={row.values for row in result},
            consumed=consumed,
            total_inputs=self.total_inputs,
            exhausted=consumed >= self.total_inputs,
        )

    def exact(self) -> Set[Tuple[Any, ...]]:
        """The full answer (budget = everything)."""
        return {row.values for row in self.query.evaluate(self.db)}

    def quality_curve(self, budgets: List[int]) -> List[Tuple[int, float, float]]:
        """(budget, completeness, recall) at each budget — the anytime
        profile Vrbsky-style systems report."""
        exact = self.exact()
        out = []
        for b in budgets:
            ans = self.evaluate(b)
            out.append((b, ans.completeness, ans.recall_against(exact)))
        return out
