"""ω-automata: Büchi and Muller acceptance (Section 2.1).

An ω-automaton is a finite automaton whose acceptance condition is
adapted to infinite words.  For a run r, ``inf(r)`` is the set of
states visited infinitely often:

* **Büchi**: r accepts iff inf(r) ∩ F ≠ ∅;
* **Muller**: r accepts iff inf(r) ∈ 𝓕 for an acceptance family
  𝓕 ⊆ 2^S.

Executable acceptance is provided for *ultimately periodic* (lasso)
words u·vω — exactly the class our constructions produce:

* nondeterministic Büchi acceptance of u·vω is decided on the product
  graph S × positions(v): the word is accepted iff some configuration
  (q, p) reachable after u lies on a cycle through an accepting state;
* Muller acceptance is decided for deterministic automata by running
  until the (state, position) configuration repeats and collecting the
  states inside the cycle (that set *is* inf(r)).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .fa import FiniteAutomaton

__all__ = ["BuchiAutomaton", "MullerAutomaton", "LassoWord"]

State = Any
Symbol = Any


class LassoWord:
    """An ultimately periodic ω-word u·vω over plain symbols."""

    def __init__(self, stem: Sequence[Symbol], cycle: Sequence[Symbol]):
        if not cycle:
            raise ValueError("lasso cycle must be non-empty")
        self.stem: Tuple[Symbol, ...] = tuple(stem)
        self.cycle: Tuple[Symbol, ...] = tuple(cycle)

    def __getitem__(self, i: int) -> Symbol:
        if i < len(self.stem):
            return self.stem[i]
        return self.cycle[(i - len(self.stem)) % len(self.cycle)]

    def take(self, n: int) -> List[Symbol]:
        return [self[i] for i in range(n)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"LassoWord({''.join(map(str, self.stem))}({''.join(map(str, self.cycle))})^ω)"


class BuchiAutomaton(FiniteAutomaton):
    """Büchi automaton: F-states must recur infinitely often."""

    def accepts_lasso(self, word: LassoWord) -> bool:
        """Does some run over u·vω visit F infinitely often?

        Configurations are (state, position-in-cycle).  After consuming
        the stem we search, for every reachable configuration, for a
        cycle in the configuration graph that goes through an accepting
        state.  Such a cycle yields a run with inf(r) ∩ F ≠ ∅, and any
        accepting run eventually stays inside such a cycle.
        """
        if self._lambda:
            raise ValueError("Büchi lasso acceptance requires a λ-free automaton")
        k = len(word.cycle)
        # 1. configurations reachable after the stem, at cycle position 0
        current: Set[State] = {self.initial}
        for a in word.stem:
            current = {
                t.target
                for t in self.transitions
                if t.source in current and t.symbol == a
            }
            if not current:
                return False
        start_confs = {(s, 0) for s in current}
        # 2. configuration graph over one cycle unrolling
        def conf_succ(conf: Tuple[State, int]) -> Iterable[Tuple[State, int]]:
            s, p = conf
            a = word.cycle[p]
            for t in self.transitions:
                if t.source == s and t.symbol == a:
                    yield (t.target, (p + 1) % k)

        # reachable configurations from the stem
        reach: Set[Tuple[State, int]] = set(start_confs)
        frontier = deque(start_confs)
        while frontier:
            c = frontier.popleft()
            for n in conf_succ(c):
                if n not in reach:
                    reach.add(n)
                    frontier.append(n)
        # 3. look for a reachable configuration on a cycle through F
        accepting_confs = {c for c in reach if c[0] in self.accepting}
        for acc in accepting_confs:
            # BFS from acc; if we can come back to acc the run loops
            seen: Set[Tuple[State, int]] = set()
            q = deque(conf_succ(acc))
            found = False
            while q:
                c = q.popleft()
                if c == acc:
                    found = True
                    break
                if c in seen:
                    continue
                seen.add(c)
                q.extend(conf_succ(c))
            if found:
                return True
        return False

    def is_empty_language(self) -> bool:
        """Is L(A) = ∅?  (No reachable accepting state on a cycle.)"""
        if self._lambda:
            raise ValueError("emptiness requires a λ-free automaton")
        reach = self.reachable_states()
        adj: Dict[State, Set[State]] = {}
        for t in self.transitions:
            if t.source in reach:
                adj.setdefault(t.source, set()).add(t.target)
        for f in self.accepting & reach:
            seen: Set[State] = set()
            q = deque(adj.get(f, ()))
            while q:
                s = q.popleft()
                if s == f:
                    return False
                if s in seen:
                    continue
                seen.add(s)
                q.extend(adj.get(s, ()))
        return True

    def find_accepted_lasso(self, max_stem: int = 64) -> Optional[LassoWord]:
        """Construct some accepted u·vω, or None if L(A) = ∅."""
        if self.is_empty_language():
            return None
        # BFS for a path s0 -> f and a cycle f -> f, recording symbols.
        def bfs_path(src: State, dst: State, min_len: int) -> Optional[List[Symbol]]:
            start: Tuple[State, Tuple[Symbol, ...]] = (src, ())
            q = deque([start])
            seen = {src} if min_len == 0 else set()
            while q:
                s, path = q.popleft()
                if s == dst and len(path) >= min_len:
                    return list(path)
                if len(path) > max_stem:
                    continue
                for t in self.transitions:
                    if t.source == s and (t.target not in seen):
                        if min_len == 0:
                            seen.add(t.target)
                        q.append((t.target, path + (t.symbol,)))
            return None

        for f in self.accepting & self.reachable_states():
            stem = bfs_path(self.initial, f, 0)
            cyc = bfs_path(f, f, 1)
            if stem is not None and cyc:
                return LassoWord(stem, cyc)
        return None


class MullerAutomaton(FiniteAutomaton):
    """Muller automaton: acceptance by a family 𝓕 ⊆ 2^S on inf(r)."""

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        transitions: Iterable[Tuple[State, State, Symbol]],
        family: Iterable[Iterable[State]],
    ):
        super().__init__(alphabet, states, initial, transitions, accepting=[])
        self.family: Set[FrozenSet[State]] = {frozenset(f) for f in family}

    def is_deterministic(self) -> bool:
        seen: Set[Tuple[State, Symbol]] = set()
        for t in self.transitions:
            key = (t.source, t.symbol)
            if key in seen:
                return False
            seen.add(key)
        return not self._lambda

    def accepts_lasso(self, word: LassoWord) -> bool:
        """Deterministic Muller acceptance of u·vω.

        The deterministic run enters a configuration cycle within
        |S|·|v| steps past the stem; the states inside that cycle are
        exactly inf(r).
        """
        if not self.is_deterministic():
            raise ValueError("Muller lasso acceptance implemented for deterministic automata")
        succ: Dict[Tuple[State, Symbol], State] = {
            (t.source, t.symbol): t.target for t in self.transitions
        }
        s = self.initial
        for a in word.stem:
            nxt = succ.get((s, a))
            if nxt is None:
                return False  # the unique run dies; no accepting run exists
            s = nxt
        k = len(word.cycle)
        seen_at: Dict[Tuple[State, int], int] = {}
        trail: List[State] = []
        pos = 0
        step = 0
        while (s, pos) not in seen_at:
            seen_at[(s, pos)] = step
            trail.append(s)
            a = word.cycle[pos]
            nxt = succ.get((s, a))
            if nxt is None:
                return False
            s = nxt
            pos = (pos + 1) % k
            step += 1
        cycle_start = seen_at[(s, pos)]
        inf_r = frozenset(trail[cycle_start:])
        return inf_r in self.family
