"""Finite-state substrate: FA, ω-automata, timed Büchi automata, and
the Theorem 3.1 non-regularity machinery."""

from .buchi_ops import buchi_intersection, buchi_union
from .fa import LAMBDA, FiniteAutomaton, Transition
from .minimize import bounded_l_dfa, minimal_states_for_bounded_l, minimize_dfa
from .omega import BuchiAutomaton, LassoWord, MullerAutomaton
from .regularity import (
    ALPHABET,
    dfa_state_lower_bound,
    fooling_set,
    l_membership,
    l_omega_lasso,
    l_omega_membership_prefix,
    l_omega_word,
    l_word,
    separating_suffix,
    theorem31_construction,
    verify_fooling_set,
)
from .timed import TimedBuchiAutomaton, TimedTransition, max_constant

__all__ = [
    "FiniteAutomaton",
    "Transition",
    "LAMBDA",
    "BuchiAutomaton",
    "MullerAutomaton",
    "LassoWord",
    "buchi_union",
    "buchi_intersection",
    "minimize_dfa",
    "bounded_l_dfa",
    "minimal_states_for_bounded_l",
    "TimedBuchiAutomaton",
    "TimedTransition",
    "max_constant",
    "ALPHABET",
    "l_word",
    "l_membership",
    "fooling_set",
    "separating_suffix",
    "verify_fooling_set",
    "dfa_state_lower_bound",
    "theorem31_construction",
    "l_omega_lasso",
    "l_omega_word",
    "l_omega_membership_prefix",
]
