"""Timed Büchi automata (TBA) — Section 2.1, after Alur & Dill [10].

A TBA is A = (Σ, S, s₀, δ, C, F) with δ ⊆ S × S × Σ × 2^C × Φ(C).  A
transition (s, s′, a, l, d) is enabled when the guard d holds of the
clock valuation *advanced to the current input's timestamp* (the paper:
"(ν_{i−1} + τ_i − τ_{i−1}) satisfies d_i"); the clocks in l are then
reset.  Acceptance is Büchi on the run's states.

Decidability note
-----------------
The paper (and this reproduction) uses **discrete** time.  With integer
clocks and guards comparing against integer constants, two valuations
agreeing on min(value, cmax+1) for every clock satisfy exactly the same
guards forever (cmax = largest constant in any guard) — the discrete
degenerate case of the Alur–Dill region construction.  Capping clock
values at cmax+1 therefore makes the configuration space finite, and
acceptance of lasso timed words is decided by cycle search on the
finite graph of (state, capped valuation, loop position) — the same
shape as :meth:`BuchiAutomaton.accepts_lasso`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..kernel.clock import And, ClockConstraint, Ge, Le, Not, TrueConstraint
from ..words.timedword import TimedWord

__all__ = ["TimedTransition", "TimedBuchiAutomaton", "max_constant"]

State = Any
Symbol = Any


@dataclass(frozen=True)
class TimedTransition:
    """(s, s′, a, l, d): source, target, symbol, reset set, guard."""

    source: State
    target: State
    symbol: Symbol
    resets: FrozenSet[str]
    guard: ClockConstraint

    @staticmethod
    def make(
        source: State,
        target: State,
        symbol: Symbol,
        resets: Iterable[str] = (),
        guard: Optional[ClockConstraint] = None,
    ) -> "TimedTransition":
        return TimedTransition(
            source, target, symbol, frozenset(resets), guard or TrueConstraint()
        )


def max_constant(guard: ClockConstraint) -> int:
    """Largest constant compared against in a Φ(X) constraint."""
    if isinstance(guard, (Le, Ge)):
        return int(guard.bound)
    if isinstance(guard, Not):
        return max_constant(guard.inner)
    if isinstance(guard, And):
        return max(max_constant(guard.left), max_constant(guard.right))
    return 0


class TimedBuchiAutomaton:
    """A timed Büchi automaton over discrete time."""

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        transitions: Iterable[TimedTransition],
        clocks: Iterable[str],
        accepting: Iterable[State],
    ):
        self.alphabet = frozenset(alphabet)
        self.states = frozenset(states)
        self.initial = initial
        self.clocks = tuple(sorted(set(clocks)))
        self.transitions: List[TimedTransition] = list(transitions)
        self.accepting = frozenset(accepting)
        for tr in self.transitions:
            if tr.source not in self.states or tr.target not in self.states:
                raise ValueError(f"transition {tr} uses unknown states")
            if tr.symbol not in self.alphabet:
                raise ValueError(f"transition {tr} uses unknown symbol {tr.symbol!r}")
            unknown = tr.resets - set(self.clocks)
            if unknown:
                raise ValueError(f"transition {tr} resets unknown clocks {unknown}")
            unknown = tr.guard.clocks() - set(self.clocks)
            if unknown:
                raise ValueError(f"guard of {tr} reads unknown clocks {unknown}")
        self._cmax = max(
            (max_constant(tr.guard) for tr in self.transitions), default=0
        )
        self._by_source: Dict[Tuple[State, Symbol], List[TimedTransition]] = {}
        for tr in self.transitions:
            self._by_source.setdefault((tr.source, tr.symbol), []).append(tr)

    # -- run machinery ----------------------------------------------------
    def _cap(self, value: int) -> int:
        """Region abstraction for discrete time: values past cmax merge."""
        return min(value, self._cmax + 1)

    def _initial_config(self) -> Tuple[State, Tuple[int, ...]]:
        return (self.initial, tuple(0 for _ in self.clocks))

    def _step_configs(
        self,
        configs: Set[Tuple[State, Tuple[int, ...]]],
        symbol: Symbol,
        gap: int,
        capped: bool = True,
    ) -> Set[Tuple[State, Tuple[int, ...]]]:
        """All successor configurations on reading (symbol, +gap)."""
        out: Set[Tuple[State, Tuple[int, ...]]] = set()
        for state, vals in configs:
            advanced = {
                c: (self._cap(v + gap) if capped else v + gap)
                for c, v in zip(self.clocks, vals)
            }
            for tr in self._by_source.get((state, symbol), ()):
                if not tr.guard.evaluate(advanced):
                    continue
                nxt = tuple(
                    0 if c in tr.resets else advanced[c] for c in self.clocks
                )
                out.add((tr.target, nxt))
        return out

    def configs_after_prefix(
        self, word: TimedWord, n: int, capped: bool = True
    ) -> Set[Tuple[State, Tuple[int, ...]]]:
        """Reachable (state, valuation) set after the first n pairs."""
        configs = {self._initial_config()}
        prev_t = 0
        for i in range(n):
            s, t = word[i]
            configs = self._step_configs(configs, s, t - prev_t, capped=capped)
            prev_t = t
            if not configs:
                break
        return configs

    def has_run_over_prefix(self, word: TimedWord, n: int) -> bool:
        """Is there any run of the TBA over the first n pairs?"""
        return bool(self.configs_after_prefix(word, n))

    # -- Büchi acceptance on lasso timed words --------------------------------
    def accepts_lasso(self, word: TimedWord) -> bool:
        """Büchi acceptance of a lasso timed word, decided exactly.

        Requires ``word`` to be in lasso form.  Works on configurations
        (state, capped valuation, loop position); per the module
        docstring the capping is exact for integer time, so acceptance
        ⟺ some reachable configuration lies on a configuration cycle
        through an accepting state.

        For shift-0 lassos the per-step gaps are eventually all zero,
        which the same construction handles (the gap sequence is
        periodic either way).
        """
        if word.fn is not None or word.is_finite:
            raise ValueError("accepts_lasso needs a lasso TimedWord")
        k = len(word.loop)
        p0 = len(word.prefix)

        # gap entering loop position j (from the previous pair)
        def loop_gap(j: int) -> int:
            idx = p0 + k + j  # use the 2nd iteration so the previous pair exists
            return word.time_at(idx) - word.time_at(idx - 1)

        gaps = [loop_gap(j) for j in range(k)]

        # configurations after the prefix AND one full loop iteration
        # (so that every subsequent step uses the periodic gap pattern)
        start_confs = {
            (s, v, 0)
            for (s, v) in self.configs_after_prefix(word, p0 + k)
        }
        if not start_confs:
            return False

        def succ(conf: Tuple[State, Tuple[int, ...], int]):
            state, vals, pos = conf
            symbol = word.loop[pos][0]
            nxt_set = self._step_configs({(state, vals)}, symbol, gaps[pos])
            np = (pos + 1) % k
            for s2, v2 in nxt_set:
                yield (s2, v2, np)

        reach: Set[Tuple[State, Tuple[int, ...], int]] = set(start_confs)
        frontier = deque(start_confs)
        while frontier:
            c = frontier.popleft()
            for nxt in succ(c):
                if nxt not in reach:
                    reach.add(nxt)
                    frontier.append(nxt)

        for acc in (c for c in reach if c[0] in self.accepting):
            seen: Set[Tuple[State, Tuple[int, ...], int]] = set()
            q = deque(succ(acc))
            while q:
                c = q.popleft()
                if c == acc:
                    return True
                if c in seen:
                    continue
                seen.add(c)
                q.extend(succ(c))
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TimedBuchiAutomaton(|S|={len(self.states)}, |C|={len(self.clocks)}, "
            f"|δ|={len(self.transitions)}, cmax={self._cmax})"
        )
