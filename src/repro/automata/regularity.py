"""Theorem 3.1 machinery: the non-ω-regular language L_ω.

The paper exhibits L = {aᵘ bˣ cᵛ dˣ | u, x, v > 0} over Σ = {a,b,c,d}
and L_ω = {l₁$l₂$l₃$… | lᵢ ∈ L}, and proves L_ω is not ω-regular by
reducing any would-be Büchi acceptor of L_ω to a finite acceptor of L.
The language "models a search into a database for a given key".

Executable evidence (benchmark E3):

* :func:`l_membership` — the decision procedure for L;
* :func:`fooling_set` — the Myhill–Nerode witnesses
  {a bˣ | 1 ≤ x ≤ N}: for x ≠ y the suffix ``c dˣ`` separates a bˣ
  from a bʸ, so any DFA for L needs > N states, for every N — i.e. L
  is not regular, constructively checked at any size;
* :func:`verify_fooling_set` — checks pairwise separation using only
  the membership oracle (what a reviewer would re-run);
* :func:`theorem31_construction` — executes the proof's automaton
  surgery: given a Büchi automaton B (a candidate acceptor of L_ω) and
  an accepting run over a word x ∈ L_ω, build the finite automaton A′
  (fresh initial state, λ-moves into S₁, accepting set S₂) and return
  it, so tests can exhibit the contradiction on concrete B's;
* :func:`l_omega_word` — lasso timed ω-words of L_ω for the timed
  variant (Corollary 3.2).
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..words.timedword import TimedWord
from .fa import LAMBDA, FiniteAutomaton
from .omega import BuchiAutomaton, LassoWord

__all__ = [
    "ALPHABET",
    "l_word",
    "l_membership",
    "fooling_set",
    "separating_suffix",
    "verify_fooling_set",
    "theorem31_construction",
    "l_omega_lasso",
    "l_omega_word",
    "dfa_state_lower_bound",
]

ALPHABET = ("a", "b", "c", "d")
_L_RE = re.compile(r"^(a+)(b+)(c+)(d+)$")


def l_word(u: int, x: int, v: int) -> str:
    """The word aᵘ bˣ cᵛ dˣ ∈ L."""
    if u <= 0 or x <= 0 or v <= 0:
        raise ValueError("L requires u, x, v > 0")
    return "a" * u + "b" * x + "c" * v + "d" * x


def l_membership(word: str) -> bool:
    """Decision procedure for L = {aᵘ bˣ cᵛ dˣ | u, x, v > 0}."""
    m = _L_RE.match(word)
    return bool(m) and len(m.group(2)) == len(m.group(4))


# ----------------------------------------------------------------------
# Myhill–Nerode / fooling-set evidence that L is not regular
# ----------------------------------------------------------------------

def fooling_set(n: int) -> List[str]:
    """The prefixes {a bˣ | 1 ≤ x ≤ n}, pairwise L-inequivalent."""
    return ["a" + "b" * x for x in range(1, n + 1)]


def separating_suffix(p1: str, p2: str) -> Optional[str]:
    """A suffix z with exactly one of p1·z, p2·z in L (None if equivalent).

    For the fooling set, ``c d^{x₁}`` works: a bˣ¹ c dˣ¹ ∈ L while
    a bˣ² c dˣ¹ ∉ L when x₂ ≠ x₁.
    """
    x1 = p1.count("b")
    x2 = p2.count("b")
    if x1 == x2:
        return None
    return "c" + "d" * x1


def verify_fooling_set(n: int) -> bool:
    """Check pairwise separation of the size-n fooling set via the
    membership oracle alone (no appeal to the closed form)."""
    prefixes = fooling_set(n)
    for i in range(n):
        for j in range(i + 1, n):
            z = separating_suffix(prefixes[i], prefixes[j])
            if z is None:
                return False
            if l_membership(prefixes[i] + z) == l_membership(prefixes[j] + z):
                return False
    return True


def dfa_state_lower_bound(n: int) -> int:
    """Any DFA for L has > n states, witnessed by the verified fooling
    set.  Returns n after verification (raises on failure)."""
    if not verify_fooling_set(n):
        raise AssertionError(f"fooling set of size {n} failed verification")
    return n


# ----------------------------------------------------------------------
# the Theorem 3.1 automaton surgery
# ----------------------------------------------------------------------

def theorem31_construction(
    buchi: BuchiAutomaton, run_states: Sequence[object], word: LassoWord
) -> FiniteAutomaton:
    """Execute the proof of Theorem 3.1 on concrete data.

    Given a Büchi automaton ``buchi`` (a candidate acceptor of L_ω), a
    run ``run_states`` of it over the lasso word ``word`` (state i is
    the state *after* reading symbol i; index 0 is s₀), build the
    finite automaton A′ of the proof:

    * S₁ = states immediately **after** parsing a ``$``;
    * S₂ = states immediately **before** parsing a ``$``;
    * A′ = fresh initial state s′ ∉ S, λ-moves s′ → S₁, accepting S₂,
      transition relation unchanged.

    The theorem's contradiction is that A′ would recognize L with
    finitely many states.  Tests instantiate ``buchi`` with concrete
    (necessarily wrong) candidates and observe A′ mis-deciding L.
    """
    horizon = len(run_states) - 1
    s1: Set[object] = set()
    s2: Set[object] = set()
    for i in range(horizon):
        if word[i] == "$":
            s2.add(run_states[i])       # state immediately before the $
            s1.add(run_states[i + 1])   # state immediately after the $
    fresh = ("s'", object())  # guaranteed not in buchi.states
    states = set(buchi.states) | {fresh}
    transitions: List[Tuple[object, object, object]] = [
        (t.source, t.target, t.symbol) for t in buchi.transitions
    ]
    transitions.extend((fresh, s, LAMBDA) for s in s1)
    return FiniteAutomaton(
        alphabet=buchi.alphabet - {"$"},
        states=states,
        initial=fresh,
        transitions=[
            (s, t, a)
            for (s, t, a) in transitions
            if a is LAMBDA or a != "$"
        ],
        accepting=s2,
    )


# ----------------------------------------------------------------------
# L_ω words (and the timed variant of Corollary 3.2)
# ----------------------------------------------------------------------

def l_omega_lasso(blocks: Iterable[Tuple[int, int, int]], cycle_block: Tuple[int, int, int]) -> LassoWord:
    """The ω-word l₁$l₂$…$(l_c$)ω with lᵢ given by (u, x, v) triples."""
    stem: List[str] = []
    for u, x, v in blocks:
        stem.extend(l_word(u, x, v))
        stem.append("$")
    cu, cx, cv = cycle_block
    cycle = list(l_word(cu, cx, cv)) + ["$"]
    return LassoWord(stem, cycle)


def l_omega_word(
    blocks: Iterable[Tuple[int, int, int]],
    cycle_block: Tuple[int, int, int],
    period: int = 1,
) -> TimedWord:
    """Corollary 3.2: attach a time sequence to an L_ω word.

    One symbol arrives per ``period`` chronons; the result is a
    well-behaved lasso timed ω-word of the language L′_ω.
    """
    lasso = l_omega_lasso(blocks, cycle_block)
    stem_pairs = [(s, i * period) for i, s in enumerate(lasso.stem)]
    base = len(lasso.stem) * period
    loop_pairs = [(s, base + j * period) for j, s in enumerate(lasso.cycle)]
    return TimedWord.lasso(
        prefix=stem_pairs, loop=loop_pairs, shift=len(lasso.cycle) * period
    )


def l_omega_membership_prefix(symbols: Sequence[str]) -> bool:
    """Is the finite prefix consistent with membership in L_ω?

    Every completed ``$``-delimited block must be in L, and the open
    trailing block must be a prefix of some L word.
    """
    text = "".join(symbols)
    parts = text.split("$")
    closed, open_part = parts[:-1], parts[-1]
    if any(not l_membership(p) for p in closed):
        return False
    return bool(re.match(r"^a*b*c*d*$", open_part)) if open_part else True
