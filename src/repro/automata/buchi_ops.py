"""Closure constructions for Büchi automata.

The ω-regular languages are closed under union and intersection; these
are the standard constructions, used by the tests to cross-check the
timed-language closure operations of Theorem 3.3 against their
finite-state shadows:

* **union** — disjoint sum with a fresh initial state (λ-free version:
  nondeterministic branch on the first symbol);
* **intersection** — the 2-track product: a run must visit F₁ on track
  1 and later F₂ on track 2 infinitely often; the track bit flips on
  the respective visits, and acceptance is "track flips infinitely
  often" (accepting set = flips at track 2).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .omega import BuchiAutomaton

__all__ = ["buchi_union", "buchi_intersection"]


def buchi_union(a: BuchiAutomaton, b: BuchiAutomaton) -> BuchiAutomaton:
    """L(A) ∪ L(B) via disjoint sum with a duplicated start.

    States are tagged ("A", s) / ("B", s); a fresh initial state
    carries copies of both originals' initial transitions, so the
    nondeterministic choice of branch happens on the first symbol.
    """
    init = ("∪", "init")
    states: List[Any] = [init]
    states += [("A", s) for s in a.states]
    states += [("B", s) for s in b.states]
    transitions: List[Tuple[Any, Any, Any]] = []
    for t in a.transitions:
        transitions.append((("A", t.source), ("A", t.target), t.symbol))
        if t.source == a.initial:
            transitions.append((init, ("A", t.target), t.symbol))
    for t in b.transitions:
        transitions.append((("B", t.source), ("B", t.target), t.symbol))
        if t.source == b.initial:
            transitions.append((init, ("B", t.target), t.symbol))
    accepting = [("A", s) for s in a.accepting] + [("B", s) for s in b.accepting]
    return BuchiAutomaton(
        a.alphabet | b.alphabet, states, init, transitions, accepting
    )


def buchi_intersection(a: BuchiAutomaton, b: BuchiAutomaton) -> BuchiAutomaton:
    """L(A) ∩ L(B) via the 2-track product construction.

    State (s, q, track): track 1 waits for an F₁ visit, track 2 for an
    F₂ visit; visiting flips the track.  inf(r) meets both F₁ and F₂
    iff the run passes the 1→2 flip infinitely often, so the accepting
    set is the {(s, q, 2) with q ∈ F₂} states (equivalently the flip
    points; this choice keeps the construction standard).
    """
    alphabet = a.alphabet & b.alphabet
    states = [
        (s, q, track)
        for s in a.states
        for q in b.states
        for track in (1, 2)
    ]
    transitions: List[Tuple[Any, Any, Any]] = []
    for ta in a.transitions:
        if ta.symbol not in alphabet:
            continue
        for tb in b.transitions:
            if tb.symbol != ta.symbol:
                continue
            for track in (1, 2):
                # source-based flip: leaving a watched accepting state
                # hands the watch to the other track, so states
                # (·, q ∈ F₂, 2) are actually entered and dwelt in —
                # the run visits them infinitely often iff it visits
                # F₁ and F₂ infinitely often.
                if track == 1 and ta.source in a.accepting:
                    nxt = 2
                elif track == 2 and tb.source in b.accepting:
                    nxt = 1
                else:
                    nxt = track
                transitions.append(
                    ((ta.source, tb.source, track), (ta.target, tb.target, nxt), ta.symbol)
                )
    accepting = [(s, q, 2) for s in a.states for q in b.accepting]
    return BuchiAutomaton(
        alphabet, states, (a.initial, b.initial, 1), transitions, accepting
    )
