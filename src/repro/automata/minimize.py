"""DFA minimization (Moore's algorithm) and the bounded-L experiment.

Moore/Hopcroft-style partition refinement on complete DFAs.  The
Theorem 3.1 payoff: the *bounded* languages

    L_X = { aᵘ bˣ cᵛ dˣ | u, v > 0, 1 ≤ x ≤ X }

are regular for each X (bounded counting), but their minimal DFAs grow
linearly with X — measuring that growth is a second, fully mechanical
witness that L = ∪_X L_X has no finite acceptor (complementing the
fooling-set certificate in :mod:`repro.automata.regularity`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from .fa import FiniteAutomaton

__all__ = ["minimize_dfa", "bounded_l_dfa", "minimal_states_for_bounded_l"]


def _as_complete_dfa(fa: FiniteAutomaton) -> Tuple[Dict[Tuple[Any, Any], Any], Any, Set[Any], List[Any]]:
    """Extract a total transition function (determinize if needed)."""
    dfa = fa.determinize()
    delta: Dict[Tuple[Any, Any], Any] = {}
    for t in dfa.transitions:
        key = (t.source, t.symbol)
        if key in delta and delta[key] != t.target:
            raise ValueError("determinize() produced a nondeterministic table")
        delta[key] = t.target
    return delta, dfa.initial, set(dfa.accepting), sorted(dfa.states, key=repr)


def minimize_dfa(fa: FiniteAutomaton) -> FiniteAutomaton:
    """The minimal DFA for L(fa) (unreachable states dropped, Moore
    partition refinement, classes renamed to ints)."""
    delta, initial, accepting, _states = _as_complete_dfa(fa)
    alphabet = sorted(fa.alphabet, key=repr)

    # reachable states only
    reachable: Set[Any] = {initial}
    frontier = [initial]
    while frontier:
        s = frontier.pop()
        for a in alphabet:
            t = delta[(s, a)]
            if t not in reachable:
                reachable.add(t)
                frontier.append(t)

    # Moore refinement
    partition: Dict[Any, int] = {
        s: (1 if s in accepting else 0) for s in reachable
    }
    while True:
        signatures: Dict[Any, Tuple] = {}
        for s in reachable:
            signatures[s] = (
                partition[s],
                tuple(partition[delta[(s, a)]] for a in alphabet),
            )
        renumber: Dict[Tuple, int] = {}
        new_partition: Dict[Any, int] = {}
        for s in sorted(reachable, key=repr):
            sig = signatures[s]
            if sig not in renumber:
                renumber[sig] = len(renumber)
            new_partition[s] = renumber[sig]
        if new_partition == partition or len(set(new_partition.values())) == len(
            set(partition.values())
        ):
            partition = new_partition
            break
        partition = new_partition

    classes = sorted(set(partition.values()))
    transitions = []
    seen: Set[Tuple[int, int, Any]] = set()
    for s in reachable:
        for a in alphabet:
            edge = (partition[s], partition[delta[(s, a)]], a)
            if edge not in seen:
                seen.add(edge)
                transitions.append(edge)
    return FiniteAutomaton(
        alphabet=fa.alphabet,
        states=classes,
        initial=partition[initial],
        transitions=transitions,
        accepting={partition[s] for s in reachable if s in accepting},
    )


def bounded_l_dfa(x_max: int) -> FiniteAutomaton:
    """A (non-minimal) complete DFA for L_X = {aᵘ bˣ cᵛ dˣ | x ≤ X}.

    States: phase machine with a counted b-run and a counted-down
    d-run; a sink absorbs every violation.
    """
    if x_max < 1:
        raise ValueError("x_max must be ≥ 1")
    states: List[Any] = ["start", "in_a", "sink"]
    states += [("in_b", x) for x in range(1, x_max + 1)]
    states += [("in_c", x) for x in range(1, x_max + 1)]
    states += [("in_d", x, r) for x in range(1, x_max + 1) for r in range(0, x + 1)]

    delta: Dict[Tuple[Any, str], Any] = {}

    def to(s: Any, a: str, t: Any) -> None:
        delta[(s, a)] = t

    for a in "abcd":
        to("sink", a, "sink")
    to("start", "a", "in_a")
    for a in "bcd":
        to("start", a, "sink")
    to("in_a", "a", "in_a")
    to("in_a", "b", ("in_b", 1))
    for a in "cd":
        to("in_a", a, "sink")
    for x in range(1, x_max + 1):
        nb = ("in_b", x + 1) if x < x_max else "sink"
        to(("in_b", x), "b", nb)
        to(("in_b", x), "c", ("in_c", x))
        to(("in_b", x), "a", "sink")
        to(("in_b", x), "d", "sink")
        to(("in_c", x), "c", ("in_c", x))
        to(("in_c", x), "d", ("in_d", x, x - 1))
        to(("in_c", x), "a", "sink")
        to(("in_c", x), "b", "sink")
        for r in range(0, x + 1):
            s = ("in_d", x, r)
            to(s, "d", ("in_d", x, r - 1) if r >= 1 else "sink")
            for a in "abc":
                to(s, a, "sink")

    transitions = [(s, t, a) for (s, a), t in delta.items()]
    accepting = [("in_d", x, 0) for x in range(1, x_max + 1)]
    return FiniteAutomaton("abcd", states, "start", transitions, accepting)


def minimal_states_for_bounded_l(x_max: int) -> int:
    """|minimal DFA for L_X| — the growth curve of the E3 extension."""
    return len(minimize_dfa(bounded_l_dfa(x_max)).states)
