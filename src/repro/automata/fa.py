"""General finite automata — the Section 2 preliminaries.

A general finite automaton is A = (Σ, S, s₀, δ, F) with δ ⊆ S × S × Σ
(the paper writes the relation with the *target* state second).  We
support nondeterminism and λ-transitions, because the Theorem 3.1 proof
constructs an automaton A′ with "λ-transitions from s′ to each state in
S₁"; everything needed to *execute* that proof is here: runs, subset
construction, product, complement, emptiness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["FiniteAutomaton", "Transition", "LAMBDA"]

#: The empty-word label for λ-transitions (Theorem 3.1 construction).
LAMBDA = object()

State = Any
Symbol = Any


@dataclass(frozen=True)
class Transition:
    """One element (s, s′, a) of the transition relation δ."""

    source: State
    target: State
    symbol: Symbol


class FiniteAutomaton:
    """A (nondeterministic) finite automaton with optional λ-moves.

    The acceptance condition is the paper's: after consuming the whole
    (finite) input, the automaton is in a state from F.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        transitions: Iterable[Tuple[State, State, Symbol]],
        accepting: Iterable[State],
    ):
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.states: FrozenSet[State] = frozenset(states)
        self.initial: State = initial
        self.accepting: FrozenSet[State] = frozenset(accepting)
        self.transitions: List[Transition] = [Transition(s, t, a) for s, t, a in transitions]
        if initial not in self.states:
            raise ValueError(f"initial state {initial!r} not in state set")
        if not self.accepting <= self.states:
            raise ValueError("accepting states must be a subset of the state set")
        for tr in self.transitions:
            if tr.source not in self.states or tr.target not in self.states:
                raise ValueError(f"transition {tr} uses unknown states")
            if tr.symbol is not LAMBDA and tr.symbol not in self.alphabet:
                raise ValueError(f"transition {tr} uses unknown symbol")
        # successor index: (state, symbol) -> set of targets
        self._succ: Dict[Tuple[State, Symbol], Set[State]] = {}
        self._lambda: Dict[State, Set[State]] = {}
        for tr in self.transitions:
            if tr.symbol is LAMBDA:
                self._lambda.setdefault(tr.source, set()).add(tr.target)
            else:
                self._succ.setdefault((tr.source, tr.symbol), set()).add(tr.target)

    # -- execution ------------------------------------------------------
    def lambda_closure(self, states: Iterable[State]) -> FrozenSet[State]:
        """States reachable by λ-moves alone."""
        seen: Set[State] = set(states)
        frontier = deque(seen)
        while frontier:
            s = frontier.popleft()
            for t in self._lambda.get(s, ()):
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
        return frozenset(seen)

    def step(self, states: Iterable[State], symbol: Symbol) -> FrozenSet[State]:
        """One subset-construction step (with λ-closure on both sides)."""
        out: Set[State] = set()
        for s in self.lambda_closure(states):
            out |= self._succ.get((s, symbol), set())
        return self.lambda_closure(out)

    def run(self, word: Sequence[Symbol]) -> List[FrozenSet[State]]:
        """The sequence of reachable-state sets along ``word``."""
        current = self.lambda_closure({self.initial})
        trace = [current]
        for a in word:
            current = self.step(current, a)
            trace.append(current)
        return trace

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Paper acceptance: some reachable end state lies in F."""
        return bool(self.run(word)[-1] & self.accepting)

    # -- constructions --------------------------------------------------------
    def determinize(self) -> "FiniteAutomaton":
        """Subset construction; state names are frozensets of states."""
        start = self.lambda_closure({self.initial})
        states: Set[FrozenSet[State]] = {start}
        transitions: List[Tuple[FrozenSet[State], FrozenSet[State], Symbol]] = []
        frontier = deque([start])
        while frontier:
            cur = frontier.popleft()
            for a in self.alphabet:
                nxt = self.step(cur, a)
                transitions.append((cur, nxt, a))
                if nxt not in states:
                    states.add(nxt)
                    frontier.append(nxt)
        accepting = {s for s in states if s & self.accepting}
        return FiniteAutomaton(self.alphabet, states, start, transitions, accepting)

    def complement(self) -> "FiniteAutomaton":
        """Complement (determinize, then flip F).  Total by construction."""
        dfa = self.determinize()
        return FiniteAutomaton(
            dfa.alphabet,
            dfa.states,
            dfa.initial,
            [(t.source, t.target, t.symbol) for t in dfa.transitions],
            dfa.states - dfa.accepting,
        )

    def product(self, other: "FiniteAutomaton") -> "FiniteAutomaton":
        """Synchronous product; accepts the intersection (λ-free only)."""
        if self._lambda or other._lambda:
            raise ValueError("product of automata with λ-moves is not supported")
        alphabet = self.alphabet & other.alphabet
        states = {(s, q) for s in self.states for q in other.states}
        transitions = [
            ((t1.source, t2.source), (t1.target, t2.target), t1.symbol)
            for t1 in self.transitions
            for t2 in other.transitions
            if t1.symbol == t2.symbol and t1.symbol in alphabet
        ]
        accepting = {(s, q) for s in self.accepting for q in other.accepting}
        return FiniteAutomaton(
            alphabet, states, (self.initial, other.initial), transitions, accepting
        )

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial state (any labels)."""
        seen: Set[State] = set(self.lambda_closure({self.initial}))
        frontier = deque(seen)
        adj: Dict[State, Set[State]] = {}
        for tr in self.transitions:
            adj.setdefault(tr.source, set()).add(tr.target)
        while frontier:
            s = frontier.popleft()
            for t in adj.get(s, ()):
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """Does the automaton accept no word at all?"""
        return not (self.reachable_states() & self.accepting)

    def shortest_accepted(self, max_len: int = 32) -> Optional[List[Symbol]]:
        """BFS for a shortest accepted word (None if none ≤ max_len)."""
        start = self.lambda_closure({self.initial})
        seen = {start}
        frontier: deque = deque([(start, [])])
        while frontier:
            cur, word = frontier.popleft()
            if cur & self.accepting:
                return word
            if len(word) >= max_len:
                continue
            for a in sorted(self.alphabet, key=repr):
                nxt = self.step(cur, a)
                if nxt and nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, word + [a]))
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FiniteAutomaton(|S|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|δ|={len(self.transitions)}, |F|={len(self.accepting)})"
        )
