"""The small text grammar over the query builder.

Grammar (whitespace-insensitive; ``|`` binds loosest, then ``&``)::

    query  := andq ('|' andq)*
    andq   := term ('&' term)*
    term   := 'repeat' '(' chain ')'
            | 'once' '(' chain ')'
            | '(' query ')'
            | chain
    chain  := step (';' step)*
    step   := NAME mod*
    mod    := 'within' INT | 'after' INT | 'deadline' INT ('grace' INT)?

``NAME`` is ``[A-Za-z_][A-Za-z0-9_.-]*`` (minus the reserved words
above); a bare step means window ``[0, 0]`` — the next event must be
that action immediately, exactly :func:`repro.spec.combinators.rt_bound`
defaults.  Examples::

    parse("a ; b within 5")                  # sequencing + window
    parse("repeat(hb within 10)")            # ω-iteration
    parse("once(job deadline 7 grace 2)")    # §4.1 soft deadline
    parse("a within 3 | b after 1 within 4") # disjunction

Every production routes through the :class:`~repro.query.builder.Q`
builder, so text and fluent queries validate identically and
:func:`to_text` ∘ :func:`parse` is the identity on builder queries
(``tests/test_query_grammar.py`` pins the round-trip both ways).
"""

from __future__ import annotations

import re
from typing import Any, List, Tuple

from .builder import AndQuery, ChainQuery, OrQuery, Q, Query

__all__ = ["parse", "to_text", "ParseError", "RESERVED"]

#: Words the grammar claims; they cannot be event names in text form.
RESERVED = frozenset(
    {"within", "after", "deadline", "grace", "repeat", "once"}
)

_TOKEN = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_.-]*)|(?P<punct>[|&;()]))"
)


class ParseError(ValueError):
    """The query text does not match the grammar."""


def _tokenize(text: str) -> List[Tuple[str, Any]]:
    tokens: List[Tuple[str, Any]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize query text at {rest[:20]!r}")
        pos = m.end()
        if m.group("int") is not None:
            tokens.append(("int", int(m.group("int"))))
        elif m.group("name") is not None:
            tokens.append(("name", m.group("name")))
        else:
            tokens.append(("punct", m.group("punct")))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Tuple[str, Any]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return ("eof", None)

    def take(self) -> Tuple[str, Any]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect_punct(self, p: str) -> None:
        kind, value = self.take()
        if kind != "punct" or value != p:
            raise ParseError(f"expected {p!r}, got {value!r}")

    def expect_int(self, context: str) -> int:
        kind, value = self.take()
        if kind != "int":
            raise ParseError(f"{context} needs an integer, got {value!r}")
        return value

    # -- productions -------------------------------------------------------
    def query(self) -> Query:
        parts = [self.andq()]
        while self.peek() == ("punct", "|"):
            self.take()
            parts.append(self.andq())
        if len(parts) == 1:
            return parts[0]
        return OrQuery(tuple(parts))

    def andq(self) -> Query:
        parts = [self.term()]
        while self.peek() == ("punct", "&"):
            self.take()
            parts.append(self.term())
        if len(parts) == 1:
            return parts[0]
        return AndQuery(tuple(parts))

    def term(self) -> Query:
        kind, value = self.peek()
        if kind == "name" and value in ("repeat", "once"):
            self.take()
            self.expect_punct("(")
            chain = self.chain()
            self.expect_punct(")")
            return chain.repeat() if value == "repeat" else chain.once()
        if (kind, value) == ("punct", "("):
            self.take()
            inner = self.query()
            self.expect_punct(")")
            return inner
        return self.chain()

    def chain(self) -> ChainQuery:
        chain = self.step(None)
        while self.peek() == ("punct", ";"):
            self.take()
            chain = self.step(chain)
        return chain

    def step(self, chain: Any) -> ChainQuery:
        kind, name = self.take()
        if kind != "name" or name in RESERVED:
            raise ParseError(f"expected an event name, got {name!r}")
        out = Q.event(name) if chain is None else chain.then(name)
        while True:
            kind, value = self.peek()
            if kind != "name" or value not in RESERVED:
                return out
            self.take()
            if value == "within":
                out = out.within(self.expect_int("within"))
            elif value == "after":
                out = out.after(self.expect_int("after"))
            elif value == "deadline":
                t_d = self.expect_int("deadline")
                grace = 0
                if self.peek() == ("name", "grace"):
                    self.take()
                    grace = self.expect_int("grace")
                out = out.deadline(t_d, grace)
            else:
                raise ParseError(f"misplaced {value!r} in step modifiers")


def parse(text: str) -> Query:
    """Parse query text into a :class:`~repro.query.builder.Query`."""
    parser = _Parser(text)
    if not parser.tokens:
        raise ParseError("empty query text")
    out = parser.query()
    kind, value = parser.peek()
    if kind != "eof":
        raise ParseError(f"trailing input at {value!r}")
    return out


# -- rendering ---------------------------------------------------------

def _step_text(action: Any, lo: int, hi: int) -> str:
    name = str(action)
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.-]*", name) or name in RESERVED:
        raise ValueError(
            f"action {action!r} has no text form (names must match the "
            f"grammar's NAME token and avoid reserved words)"
        )
    parts = [name]
    if lo > 0:
        parts.append(f"after {lo}")
    if hi > lo or (lo == 0 and hi > 0):
        parts.append(f"within {hi}")
    return " ".join(parts)


def to_text(query: Query) -> str:
    """Render a query in the text grammar (inverse of :func:`parse`)."""
    if isinstance(query, ChainQuery):
        chain = " ; ".join(
            _step_text(s.action, s.lo, s.hi) for s in query.steps
        )
        if query.mode is None:
            return chain
        return f"{query.mode}({chain})"
    if isinstance(query, (OrQuery, AndQuery)):
        sep = " | " if isinstance(query, OrQuery) else " & "
        rendered = []
        for p in query.parts:
            text = to_text(p)
            # `&` binds tighter than `|`: a disjunction branch inside a
            # conjunction needs its parentheses back.
            if isinstance(query, AndQuery) and isinstance(p, OrQuery):
                text = f"({text})"
            rendered.append(text)
        return sep.join(rendered)
    raise TypeError(f"not a query: {query!r}")
