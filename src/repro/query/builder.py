"""The fluent query builder — CER-style composition over timer bounds.

García & Riveros' CER framework (PAPERS.md) distills complex event
queries to four operators — sequencing, disjunction, iteration, and
time windows — and shows they compile to automata with O(state) work
per event.  This module is that surface for the paper's timed
ω-words: a :class:`Query` is an immutable description built with

    Q.event("req").then("rsp").within(5)          # sequencing + window
    Q.event("a") | Q.event("b").within(3)         # disjunction
    Q.event("hb").within(10).repeat()             # iteration (ω)
    Q.event("job").deadline(7, grace=2).once()    # §4.1 deadlines

and :meth:`Query.lower` maps it onto the existing
:mod:`repro.spec` combinators (``rt_bound``/``seq``/``loop``/
``eventually``/``alt``/``both``) — from there the whole substrate
already works: TBAs via ``to_tba``, engine acceptors, stream monitors.
Nothing downstream knows queries exist; they are pure front-end.

Timing model: every step is an ``rt_bound`` phase — the *next*
occurrence of the step's action must arrive with elapsed time in
``[after, within]`` chronons since the previous step completed (other
symbols pass while the budget lasts).  A bare ``Q.event(a)`` means
``[0, 0]``: `a` immediately.  ``.deadline(t_d)`` converts the last
step's window through the §4.1 bridge
(:func:`repro.spec.compile.from_deadline_spec`): firm deadlines accept
completion strictly before ``t_d``; a ``grace`` makes it the step-soft
class accepting through ``t_d + grace``.

ω-coercion matches the combinators: a chain without ``.repeat()`` /
``.once()`` denotes "complete once, then anything" (``as_omega``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from ..deadlines.spec import DeadlineKind, DeadlineSpec, StepUsefulness
from ..spec.combinators import (
    Spec,
    actions_of,
    as_omega,
    eventually,
    loop,
    rt_bound,
    seq,
)
from ..spec.compile import from_deadline_spec

__all__ = ["Q", "Query", "ChainQuery", "OrQuery", "AndQuery", "QStep"]


@dataclass(frozen=True)
class QStep:
    """One step of a chain: next ``action`` within ``[lo, hi]``."""

    action: Any
    lo: int = 0
    hi: int = 0

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"after() bound must be >= 0, got {self.lo}")
        if self.hi < self.lo:
            raise ValueError(
                f"within() bound must be >= after() bound, "
                f"got [{self.lo}, {self.hi}]"
            )


class Query:
    """Base of all query nodes; immutable, hashable, composable."""

    __slots__ = ()

    # -- composition -------------------------------------------------------
    def __or__(self, other: "Query") -> "Query":
        """Disjunction — the stream matches either query."""
        return OrQuery(_merge(OrQuery, self, other))

    def __and__(self, other: "Query") -> "Query":
        """Fair conjunction — both queries' obligations recur."""
        return AndQuery(_merge(AndQuery, self, other))

    # -- lowering ----------------------------------------------------------
    def lower(self) -> Any:
        """The equivalent :mod:`repro.spec` combinator spec."""
        raise NotImplementedError

    def spec(self) -> Spec:
        """The lowered spec coerced to the ω layer (bare chains mean
        *complete once, then anything*)."""
        return as_omega(self.lower())

    def default_alphabet(self) -> Tuple[Any, ...]:
        """The query's own action set, sorted — the alphabet used when
        none is given."""
        return tuple(sorted(actions_of(self.spec()), key=repr))

    def _alphabet(self, alphabet: Optional[Iterable[Any]]) -> Tuple[Any, ...]:
        if alphabet is None:
            return self.default_alphabet()
        return tuple(sorted(set(alphabet), key=repr))

    def tba(self, alphabet: Optional[Iterable[Any]] = None):
        """Compile to a :class:`~repro.automata.timed.TimedBuchiAutomaton`
        (memoized per (spec, alphabet) — repeats share one automaton)."""
        from ..spec.compile import to_tba

        return to_tba(self.spec(), self._alphabet(alphabet))

    def acceptor(self, alphabet: Optional[Iterable[Any]] = None):
        """An engine-consumable exact-lasso acceptor for the query."""
        from ..spec.compile import spec_acceptor

        return spec_acceptor(self.spec(), self._alphabet(alphabet))

    def monitor(self, alphabet: Optional[Iterable[Any]] = None, **kwargs: Any):
        """An online :class:`~repro.stream.monitor.TBAMonitor` (kwargs
        pass through: lateness, f_window, compiled, …)."""
        from ..spec.compile import spec_monitor

        return spec_monitor(self.spec(), self._alphabet(alphabet), **kwargs)

    def holds(self, word: Any, alphabet: Optional[Iterable[Any]] = None) -> bool:
        """Direct denotational membership of a lasso word."""
        from ..spec.semantics import holds

        return holds(self.spec(), word, self._alphabet(alphabet))

    def to_text(self) -> str:
        """The query in the text grammar (``parse`` round-trips it)."""
        from .grammar import to_text

        return to_text(self)


def _merge(cls: type, left: Query, right: Query) -> Tuple[Query, ...]:
    if not isinstance(right, Query):
        raise TypeError(f"cannot combine a query with {right!r}")
    lp = left.parts if isinstance(left, cls) else (left,)
    rp = right.parts if isinstance(right, cls) else (right,)
    return lp + rp


@dataclass(frozen=True)
class ChainQuery(Query):
    """A phase chain: steps in sequence, each window restarting on the
    previous step's action; ``mode`` lifts it to the ω layer."""

    steps: Tuple[QStep, ...]
    mode: Optional[str] = None  # None (single-shot via coercion) | "repeat" | "once"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a chain query needs at least one event step")
        if self.mode not in (None, "repeat", "once"):
            raise ValueError(f"unknown chain mode {self.mode!r}")

    # -- chain building ----------------------------------------------------
    def _un_omega(self, op: str) -> None:
        if self.mode is not None:
            raise ValueError(
                f"{op}() must come before .repeat()/.once() — the ω "
                f"operators close the chain"
            )

    def then(self, action: Any, lo: int = 0, hi: int = 0) -> "ChainQuery":
        """Append a step: next ``action`` within ``[lo, hi]`` of the
        previous step's completion."""
        self._un_omega("then")
        return ChainQuery(self.steps + (QStep(action, int(lo), int(hi)),))

    def within(self, hi: int) -> "ChainQuery":
        """Set the last step's ``MaxTime`` window."""
        self._un_omega("within")
        last = self.steps[-1]
        return self._replace_last(QStep(last.action, last.lo, int(hi)))

    def after(self, lo: int) -> "ChainQuery":
        """Set the last step's ``MinTime`` bound (widening the window
        if it was tighter)."""
        self._un_omega("after")
        last = self.steps[-1]
        lo = int(lo)
        return self._replace_last(QStep(last.action, lo, max(last.hi, lo)))

    def deadline(self, t_d: int, grace: int = 0) -> "ChainQuery":
        """Give the last step §4.1 deadline semantics.

        ``grace == 0`` is the firm class (ii): completion strictly
        before ``t_d`` (window ``[0, t_d - 1]``).  ``grace > 0`` is the
        step-soft class (iii): usefulness holds through ``t_d + grace``
        (window ``[0, t_d + grace]``).  Both go through the
        :func:`~repro.spec.compile.from_deadline_spec` bridge, so the
        window is *the* bound the §4.1 oracle accepts.
        """
        self._un_omega("deadline")
        if t_d < 1:
            raise ValueError(f"deadline t_d must be >= 1, got {t_d}")
        if grace < 0:
            raise ValueError(f"deadline grace must be >= 0, got {grace}")
        last = self.steps[-1]
        if grace:
            dspec = DeadlineSpec(
                kind=DeadlineKind.SOFT,
                t_d=t_d,
                usefulness=StepUsefulness(max_value=1, t_d=t_d, grace=grace),
                min_acceptable=1,
            )
        else:
            dspec = DeadlineSpec(kind=DeadlineKind.FIRM, t_d=t_d)
        bound = from_deadline_spec(dspec, action=last.action)
        return self._replace_last(QStep(last.action, bound.lo, bound.hi))

    def _replace_last(self, step: QStep) -> "ChainQuery":
        return ChainQuery(self.steps[:-1] + (step,))

    # -- ω operators -------------------------------------------------------
    def repeat(self) -> "ChainQuery":
        """The chain completes again and again, forever (Büchi
        iteration — stalling mid-chain rejects)."""
        self._un_omega("repeat")
        return ChainQuery(self.steps, "repeat")

    def once(self) -> "ChainQuery":
        """The chain completes once; every continuation then accepted."""
        self._un_omega("once")
        return ChainQuery(self.steps, "once")

    def lower(self) -> Any:
        body = seq(*(rt_bound(s.action, s.lo, s.hi) for s in self.steps))
        if self.mode == "repeat":
            return loop(body)
        if self.mode == "once":
            return eventually(body)
        return body


@dataclass(frozen=True)
class OrQuery(Query):
    """Disjunction of queries (lowered to ``alt`` — automaton union)."""

    parts: Tuple[Query, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("a disjunction query needs at least two branches")

    def lower(self) -> Any:
        from ..spec.combinators import alt

        return alt(*(p.lower() for p in self.parts))


@dataclass(frozen=True)
class AndQuery(Query):
    """Fair conjunction of queries (lowered to ``both`` — the
    fairness-counter product)."""

    parts: Tuple[Query, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("a conjunction query needs at least two branches")

    def lower(self) -> Any:
        from ..spec.combinators import both

        return both(*(p.lower() for p in self.parts))


class Q:
    """The query entry point: ``Q.event(action)`` starts a chain."""

    def __init__(self) -> None:  # pragma: no cover - misuse guard
        raise TypeError("Q is a namespace, not a class to instantiate")

    @staticmethod
    def event(action: Any, lo: int = 0, hi: int = 0) -> ChainQuery:
        """A chain whose first step is ``action`` within ``[lo, hi]``."""
        return ChainQuery((QStep(action, int(lo), int(hi)),))

    @staticmethod
    def parse(text: str) -> Query:
        """Parse the text grammar (see :mod:`repro.query.grammar`)."""
        from .grammar import parse

        return parse(text)
