"""Multi-query optimization: one shared automaton, many verdicts.

Grez et al.'s complexity results for timed-pattern monitoring (see
PAPERS.md) locate the cost of CER evaluation in the per-event state
update — which the mux already shares *per language*.  This module
extends the sharing across *different* queries: a :class:`QueryPlan`
takes k phase-chain queries, completes each compiled chain automaton
(adding an explicit dead state so no component can block the others),
and runs the synchronous product as **one** deterministic TBA with one
:class:`~repro.stream.monitor.TBAAnalysis` and one
:class:`~repro.stream.compiled.CompiledTBA`.  Stepping the plan is a
single table lookup per event no matter how many queries are loaded;
shared phase-chain prefixes (the common case in fleets of sessions
watching variations of the same protocol) collapse into shared regions
of the product's configuration graph — ``stats()`` reports the fused
size against the sum of per-query universes.

Per-query verdicts come from *projections*, not extra stepping: the
product run's channel-q projection is exactly component q's run, so
:meth:`TBAAnalysis.live_for` / ``green_for`` re-derive each channel's
liveness/guarantee sets over the one shared configuration universe and
:meth:`~repro.stream.compiled.CompiledTBA.flag_view` turns them into
flag rows over the one shared table.  Crucially the per-event cost of
a channel is *zero*: channel REJECTED (out of ``live_q``) and the
green guarantee are both **forward-closed** — the current state alone
decides them — and accept recency derives from per-state visit
bookkeeping (two O(1) writes per event), so :class:`PlanMonitor`
judges channels lazily at read time.  The verdict streams are pinned
identical to k independent per-query monitors by the conformance
harness (``--gen query``) and ``tests/test_query_plan.py``.

Scope: the plan shares *phase chains* (``Loop``/``Eventually``/bare
sequences — everything :class:`~repro.query.builder.ChainQuery`
builds).  ``alt``/``both`` queries have their own product/union
structure and monitor fine individually; passing one here raises.

Correctness sketch (why projections are sound): every completed
component is total and semantically deterministic, hence so is the
product — each timed word has exactly one product run, whose channel-q
projection is exactly component q's run.  Büchi acceptance, liveness
and green therefore factor through the projection, and the any-channel
accepting set makes base liveness the union of channel liveness (a
lasso visiting the any-channel set infinitely often visits *some*
channel's set infinitely often, by pigeonhole on the cycle).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..automata.timed import TimedBuchiAutomaton, TimedTransition
from ..kernel.clock import Not, TrueConstraint
from ..obs import hooks as _obs
from ..spec.combinators import (
    Alt,
    Both,
    PhaseSpec,
    Spec,
    actions_of,
    as_omega,
    to_source,
)
from ..spec.compile import _and_fold, _rename_clocks, to_tba
from ..stream.compiled import compiled_for
from ..stream.monitor import (
    StreamVerdict,
    TBAMonitor,
    _BaseMonitor,
    analysis_for,
)
from .builder import Query

__all__ = ["QueryPlan", "PlanMonitor", "DEAD"]

#: The explicit dead state completion adds to every component: entered
#: when a chain's timer bound fails, absorbing and non-accepting — the
#: structural stand-in for the interpreter's empty configuration set.
DEAD = ("dead",)


def _complete(tba: TimedBuchiAutomaton) -> TimedBuchiAutomaton:
    """The same language over a *total* transition relation.

    Every (state, symbol) cell gets an else-edge to :data:`DEAD`
    guarded by the conjoined negations of the cell's existing guards,
    so exactly the valuations that killed a run now move it to DEAD
    instead.  DEAD self-loops unconditionally and is non-accepting:
    liveness, green and acceptance of the original configurations are
    untouched, but the automaton can no longer *block* — which is what
    lets the product construction interleave components freely.
    """
    states = list(tba.states) + [DEAD]
    transitions = list(tba.transitions)
    for s in tba.states:
        for a in tba.alphabet:
            guards = [tr.guard for tr in tba._by_source.get((s, a), ())]
            if any(isinstance(g, TrueConstraint) for g in guards):
                continue  # some edge always fires; nothing escapes
            transitions.append(
                TimedTransition(
                    s, DEAD, a, frozenset(), _and_fold(Not(g) for g in guards)
                )
            )
    for a in tba.alphabet:
        transitions.append(
            TimedTransition(DEAD, DEAD, a, frozenset(), TrueConstraint())
        )
    return TimedBuchiAutomaton(
        alphabet=tba.alphabet,
        states=states,
        initial=tba.initial,
        transitions=transitions,
        clocks=tba.clocks,
        accepting=tba.accepting,
    )


def _product(
    components: List[TimedBuchiAutomaton], alphabet: Tuple[Any, ...]
) -> TimedBuchiAutomaton:
    """The synchronous product of *completed* components.

    No fairness counter here (contrast ``_product_tba`` in
    :mod:`repro.spec.compile`): the plan does not conjoin obligations,
    it tracks every component at once and judges each through its own
    accepting projection.  Base accepting is the *any-component* set —
    the disjunction — which makes base liveness the union of the
    channels' (the headline REJECTED = every query dead).
    """
    m = len(components)
    initial = tuple(t.initial for t in components)
    states: List[Any] = [initial]
    seen = {initial}
    transitions: List[TimedTransition] = []
    frontier = [initial]
    while frontier:
        svec = frontier.pop()
        for a in alphabet:
            options = [
                t._by_source.get((svec[i], a), ())
                for i, t in enumerate(components)
            ]
            combos: List[Tuple[TimedTransition, ...]] = [()]
            for opts in options:
                combos = [c + (tr,) for c in combos for tr in opts]
            for combo in combos:
                tvec = tuple(tr.target for tr in combo)
                if tvec not in seen:
                    seen.add(tvec)
                    states.append(tvec)
                    frontier.append(tvec)
                transitions.append(
                    TimedTransition(
                        svec,
                        tvec,
                        a,
                        frozenset().union(*(tr.resets for tr in combo)),
                        _and_fold(tr.guard for tr in combo),
                    )
                )
    accepting = [
        s
        for s in states
        if any(s[i] in components[i].accepting for i in range(m))
    ]
    clocks = [c for t in components for c in t.clocks]
    return TimedBuchiAutomaton(
        alphabet=alphabet,
        states=states,
        initial=initial,
        transitions=transitions,
        clocks=clocks,
        accepting=accepting,
    )


def _as_omega_spec(query: Any) -> Spec:
    """Normalize a plan entry — query text, builder query, or spec —
    to its ω-layer spec."""
    if isinstance(query, str):
        from .grammar import parse

        return parse(query).spec()
    if isinstance(query, Query):
        return query.spec()
    if isinstance(query, (Spec, PhaseSpec)):
        return as_omega(query)
    raise TypeError(
        f"a plan entry must be query text, a Q query, or a spec; "
        f"got {query!r}"
    )


class QueryPlan:
    """k phase-chain queries fused into one shared product automaton.

    ``queries`` maps channel names to query text, builder queries, or
    phase-chain specs; identical lowered specs share one component.
    ``alphabet`` defaults to the union of every query's actions (all
    queries must watch the same symbol stream — that is what makes the
    shared stepping sound).

    Built artifacts: ``tba`` (the completed product), ``analysis``
    (one :class:`~repro.stream.monitor.TBAAnalysis`), ``compiled``
    (one :class:`~repro.stream.compiled.CompiledTBA`, or None when
    gated off), and ``channels`` — per-name (accepting, live, green)
    configuration sets over the shared universe.  :meth:`monitor`
    makes a :class:`PlanMonitor`; handing the plan to
    :class:`~repro.stream.session.SessionMux` (``plan=...``) monitors
    it per session with all the batch fast paths intact.
    """

    def __init__(
        self,
        queries: Any,
        alphabet: Optional[Iterable[Any]] = None,
        *,
        compiled: Optional[bool] = None,
    ):
        items = (
            list(queries.items())
            if isinstance(queries, Mapping)
            else list(queries)
        )
        if not items:
            raise ValueError("a query plan needs at least one query")
        self.names: Tuple[str, ...] = tuple(name for name, _q in items)
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate channel names in {self.names}")
        specs: Dict[str, Spec] = {}
        for name, q in items:
            omega = _as_omega_spec(q)
            if isinstance(omega, (Alt, Both)):
                raise ValueError(
                    f"channel {name!r} lowers to "
                    f"{type(omega).__name__.lower()}(...), which has no "
                    f"shared-prefix chain structure; a QueryPlan fuses "
                    f"phase chains only — monitor alt/both queries "
                    f"individually (Query.monitor())"
                )
            specs[name] = omega
        self.specs = specs

        if alphabet is None:
            symbols: set = set()
            for omega in specs.values():
                symbols |= actions_of(omega)
            alpha = tuple(sorted(symbols, key=repr))
        else:
            alpha = tuple(sorted(set(alphabet), key=repr))
        self.alphabet = alpha

        # Dedup identical lowered specs into components.
        comp_specs: List[Spec] = []
        comp_index: Dict[Spec, int] = {}
        self._comp_of: Dict[str, int] = {}
        for name, omega in specs.items():
            idx = comp_index.get(omega)
            if idx is None:
                idx = comp_index[omega] = len(comp_specs)
                comp_specs.append(omega)
            self._comp_of[name] = idx
        self._comp_specs = comp_specs

        components = [
            _rename_clocks(_complete(to_tba(omega, alpha)), f"q{i}.")
            for i, omega in enumerate(comp_specs)
        ]
        self.tba = _product(components, alpha)
        self.analysis = analysis_for(self.tba)

        # Per-channel verdict sets: project the shared universe onto
        # each component's accepting states, then re-derive liveness
        # and green against that projection.
        self.channels: Dict[
            str,
            Tuple[FrozenSet[Any], FrozenSet[Any], FrozenSet[Any]],
        ] = {}
        for name, idx in self._comp_of.items():
            acc_states = components[idx].accepting
            acc = frozenset(
                c for c in self.analysis.universe if c[0][idx] in acc_states
            )
            self.channels[name] = (
                acc,
                self.analysis.live_for(acc),
                self.analysis.green_for(acc),
            )

        if compiled is False:
            self.compiled = None
        else:
            self.compiled = compiled_for(self.analysis)
            if compiled is True and self.compiled is None:
                raise ValueError(
                    "compiled stepping unavailable for this plan (numpy "
                    "absent, REPRO_STREAM_COMPILED=0, or the product "
                    "exceeds the table bounds) — drop queries or split "
                    "the plan"
                )
        #: Lazily-built per-channel flag views for :attr:`compiled`
        #: (shared read-only by every :class:`PlanMonitor`).
        self._views: Optional[Tuple[List[Any], List[List[int]]]] = None
        h = _obs.HOOKS
        if h is not None:
            h.count("query.plans")
            h.observe("query.plan_configs", len(self.analysis.universe))

    def __len__(self) -> int:
        return len(self.names)

    def channel_views(self, comp: Any) -> Tuple[List[Any], List[List[int]]]:
        """Per-channel ``(acc, live, green)`` flag lists and accepting
        state indices against one compiled artifact — plan-level
        constants, built once and shared by every monitor (building
        them per session would dominate session setup)."""
        if comp is self.compiled and self._views is not None:
            return self._views
        flags = [comp.flag_view(*self.channels[name]) for name in self.names]
        acc_idx = [
            [i for i, f in enumerate(acc) if f] for acc, _lv, _gr in flags
        ]
        if comp is self.compiled:
            self._views = (flags, acc_idx)
        return flags, acc_idx

    def monitor(self, **kwargs: Any) -> "PlanMonitor":
        """A per-session :class:`PlanMonitor` over the shared plan
        (kwargs pass through: lateness, f_window, compiled, …)."""
        return PlanMonitor(self, **kwargs)

    def stats(self) -> Dict[str, Any]:
        """The sharing ledger: fused product size vs the per-query sum.

        ``per_query_configs`` builds (cached) stand-alone analyses for
        each channel's own automaton — the exact monitors the plan
        replaces.  A ``config_ratio`` below 1 means the fused graph is
        outright smaller (heavily shared prefixes); above 1, the
        product pays state for the stepping win — either way the
        *per-event* cost is one table lookup instead of k, which is
        what the BENCH_query ablation measures.
        """
        per_query = {
            name: len(analysis_for(to_tba(omega, self.alphabet)).universe)
            for name, omega in self.specs.items()
        }
        fused = len(self.analysis.universe)
        return {
            "queries": len(self.names),
            "components": len(self._comp_specs),
            "plan_configs": fused,
            "per_query_configs": per_query,
            "sum_per_query_configs": sum(per_query.values()),
            "config_ratio": fused / sum(per_query.values()),
            "deterministic": self.analysis.deterministic,
            "compiled": self.compiled is not None,
            "sources": {
                name: to_source(omega) for name, omega in self.specs.items()
            },
        }


class PlanMonitor(TBAMonitor):
    """One monitor, k verdict channels, O(1) extra work per event.

    The base-class machinery (watermark, reorder heap, compiled
    stepping, headline verdict) runs on the plan's product automaton;
    the headline verdict is the disjunction — REJECTED only once every
    channel is dead — and :meth:`query_verdicts` is the real output.

    Channels are judged *lazily*.  Per applied event the monitor
    records only per-state occupancy (visit count and last-visit time
    for the state it landed in — two O(1) writes).  At read time a
    channel's LTL₃ verdict derives exactly:

    * REJECTED iff the current state is outside ``live_q`` — sound to
      read off the *current* state alone because the complement of a
      backward-closed set is forward-closed (once a channel's language
      dies it cannot revive, so no history is needed);
    * the green guarantee likewise: ``green`` is closed under
      successors, so the lock *is* the current state's flag;
    * accept recency (the f-obligation outside green) is the latest
      last-visit time over the channel's accepting states, compared
      against ``f_window`` at the last applied timestamp — the same
      instant the eager per-event judgement would have used.

    This keeps the per-event cost independent of k, which is where the
    plan's throughput win over k separate monitors comes from.

    Checkpointing is not supported (the v1 snapshot format does not
    carry the occupancy ledger) —
    :func:`repro.stream.checkpoint.checkpoint` refuses rather than
    silently dropping the channels.
    """

    _wave_custom = True

    def __init__(
        self,
        plan: QueryPlan,
        *,
        lateness: int = 0,
        late_policy: str = "raise",
        f_window: Optional[int] = None,
        compiled: Optional[bool] = None,
    ):
        self.plan = plan
        self._ch_names = plan.names
        super().__init__(
            plan.tba,
            analysis=plan.analysis,
            lateness=lateness,
            late_policy=late_policy,
            f_window=f_window,
            compiled=compiled,
        )
        comp = self._compiled
        if comp is not None and comp.deterministic:
            n = comp.n_configs
            #: Per-state occupancy: visit counts and last-visit times,
            #: indexed like the compiled table (trap row included).
            self._svc: Any = [0] * (n + 1)
            self._slt: Any = [None] * (n + 1)
            #: Per-channel flag views and accepting state indices —
            #: plan-level constants shared across sessions.
            views = plan.channel_views(comp)
            self._ch_flags: Optional[List[Any]] = views[0]
            self._ch_acc_idx: Optional[List[List[int]]] = views[1]
            self._ch_sets = None
        else:
            self._svc = {}
            self._slt = {}
            self._ch_flags = None
            self._ch_acc_idx = None
            self._ch_sets = [plan.channels[name] for name in self._ch_names]

    # -- occupancy bookkeeping ---------------------------------------------
    def _record(self, t: int) -> None:
        if self._ch_flags is not None:
            ci = self._ci
            self._svc[ci] += 1
            self._slt[ci] = t
        else:
            for c in self._configs:
                self._svc[c] = self._svc.get(c, 0) + 1
                self._slt[c] = t

    def _advance(self, symbol: Any, t: int) -> None:
        if self.verdict is StreamVerdict.REJECTED:
            return
        super()._advance(symbol, t)
        self._record(t)

    def ingest_many(self, events) -> StreamVerdict:
        """The compiled bulk scan plus the two occupancy writes.

        Same eligibility and semantics as ``TBAMonitor.ingest_many``
        (on-time, in-order, compiled deterministic, no buffering);
        otherwise the generic loop routes every event through
        :meth:`_advance`, which records occupancy too.
        """
        comp = self._compiled
        if (
            comp is None
            or not comp.deterministic
            or self.lateness != 0
            or self._heap
        ):
            return _BaseMonitor.ingest_many(self, events)
        if not isinstance(events, (list, tuple)):
            events = list(events)
        table = comp.table_list
        get = comp.sym_index.get
        unknown = comp.n_symbols
        cap = comp.gap_cap
        acc = comp.accepting_list
        live = comp.live_list
        green = comp.green_list
        svc = self._svc
        slt = self._slt
        ci = self._ci
        pt = self.prev_t
        ms = self.max_seen
        visits = self.accept_visits
        lat = self._last_accept_time
        glock = self._green_locked
        fw = self.f_window
        verdict = self.verdict
        REJ = StreamVerdict.REJECTED
        ACC = StreamVerdict.ACCEPTING
        INC = StreamVerdict.INCONCLUSIVE
        rejected = verdict is REJ
        applied = 0
        resume = False
        wm = -1 if ms is None else ms
        for symbol, t in events:
            if t < wm or t < 0:
                resume = True
                break
            applied += 1
            wm = t
            if rejected:
                continue
            gap = t - pt
            pt = t
            row = table[ci][get(symbol, unknown)]
            ci = row[gap] if gap <= cap else row[cap]
            svc[ci] += 1
            slt[ci] = t
            if acc[ci]:
                visits += 1
                lat = t
            if not live[ci]:
                rejected = True
                self._set_verdict(REJ)
                verdict = REJ
                continue
            if glock or green[ci]:
                glock = True
                if verdict is not ACC:
                    self._set_verdict(ACC)
                    verdict = ACC
            elif lat is not None and (fw is None or t - lat <= fw):
                if verdict is not ACC:
                    self._set_verdict(ACC)
                    verdict = ACC
            elif verdict is not INC:
                self._set_verdict(INC)
                verdict = INC
        self._ci = ci
        self.prev_t = pt
        if wm >= 0:
            self.max_seen = wm
        self.accept_visits = visits
        self._last_accept_time = lat
        self._green_locked = glock
        self.events_ingested += applied
        self.events_released += applied
        self._seq += applied
        h = _obs.HOOKS
        if h is not None and applied:
            h.count("stream.events_ingested", applied, outcome="ok")
            h.count("stream.events_released", applied)
            h.count("stream.compiled_steps", applied, path="bulk")
        if resume:
            for symbol, t in events[applied:]:
                self.ingest(symbol, t)
        return self.verdict

    def _apply_wave(self, ci: int, t: int) -> None:
        """Apply one already-gathered wave step (the mux computed the
        successor index through the shared table; this does the base
        bookkeeping ``SessionMux._step_waves`` would inline for a plain
        monitor, plus the occupancy writes)."""
        self._ci = ci
        self.prev_t = t
        self.max_seen = t
        self.events_ingested += 1
        self.events_released += 1
        self._seq += 1
        comp = self._compiled
        self._svc[ci] += 1
        self._slt[ci] = t
        if comp.accepting_list[ci]:
            self.accept_visits += 1
            self._last_accept_time = t
        if not comp.live_list[ci]:
            self._set_verdict(StreamVerdict.REJECTED)
            return
        if comp.green_list[ci]:
            self._green_locked = True
        if self._green_locked or (
            self._last_accept_time is not None
            and (
                self.f_window is None
                or t - self._last_accept_time <= self.f_window
            )
        ):
            self._set_verdict(StreamVerdict.ACCEPTING)
        else:
            self._set_verdict(StreamVerdict.INCONCLUSIVE)

    # -- channel judgement (derived at read time) --------------------------
    def _channel_verdict(self, q: int) -> StreamVerdict:
        now = self.prev_t
        fw = self.f_window
        flags = self._ch_flags
        if flags is not None:
            ci = self._ci
            _acc, lv, gr = flags[q]
            if not lv[ci]:
                return StreamVerdict.REJECTED
            if gr[ci]:
                return StreamVerdict.ACCEPTING
            slt = self._slt
            lat: Optional[int] = None
            for i in self._ch_acc_idx[q]:
                ts = slt[i]
                if ts is not None and (lat is None or ts > lat):
                    lat = ts
            if lat is not None and (fw is None or now - lat <= fw):
                return StreamVerdict.ACCEPTING
            return StreamVerdict.INCONCLUSIVE
        acc_s, lv_s, gr_s = self._ch_sets[q]
        cs = self.configs
        if not (cs & lv_s):
            return StreamVerdict.REJECTED
        if gr_s and cs <= gr_s:
            return StreamVerdict.ACCEPTING
        lat = None
        for c, ts in self._slt.items():
            if c in acc_s and (lat is None or ts > lat):
                lat = ts
        if lat is not None and (fw is None or now - lat <= fw):
            return StreamVerdict.ACCEPTING
        return StreamVerdict.INCONCLUSIVE

    def query_verdicts(self) -> Dict[str, StreamVerdict]:
        """Current verdict-so-far per query channel."""
        return {
            name: self._channel_verdict(q)
            for q, name in enumerate(self._ch_names)
        }

    def channel_verdict(self, name: str) -> StreamVerdict:
        """One channel's verdict-so-far (ValueError if unknown)."""
        try:
            q = self._ch_names.index(name)
        except ValueError:
            raise ValueError(
                f"no channel {name!r} in plan {self._ch_names}"
            ) from None
        return self._channel_verdict(q)

    def channel_accept_visits(self) -> Dict[str, int]:
        """Applied events per channel that landed in an accepting
        configuration (the per-channel mirror of ``accept_visits``)."""
        out: Dict[str, int] = {}
        if self._ch_flags is not None:
            svc = self._svc
            for q, name in enumerate(self._ch_names):
                out[name] = sum(svc[i] for i in self._ch_acc_idx[q])
        else:
            for q, name in enumerate(self._ch_names):
                acc_s = self._ch_sets[q][0]
                out[name] = sum(
                    n for c, n in self._svc.items() if c in acc_s
                )
        return out

    @property
    def absorbed(self) -> bool:
        """No verdict — headline *or* channel — can still change."""
        if self.verdict is StreamVerdict.REJECTED:
            return True  # base live is the union: every channel is dead
        if not self._green_locked:
            return False
        if self._ch_flags is not None:
            ci = self._ci
            return all(
                not lv[ci] or gr[ci] for _acc, lv, gr in self._ch_flags
            )
        cs = self.configs
        return all(
            not (cs & lv_s) or (gr_s and cs <= gr_s)
            for _acc_s, lv_s, gr_s in self._ch_sets
        )
