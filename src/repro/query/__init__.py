"""repro.query — the declarative real-time query front-end.

CER-style queries (sequencing / disjunction / iteration / windows /
deadlines, after García & Riveros) over the paper's timed ω-words:

    from repro.query import Q
    q = Q.event("req").then("rsp").within(5).repeat()
    q.monitor().ingest_many([("req", 0), ("rsp", 3), ...])

Queries lower to :mod:`repro.spec` combinators
(:meth:`~repro.query.builder.Query.spec`), so everything downstream —
``engine.decide(query=...)``, :class:`~repro.stream.session.SessionMux`
(``query=`` / ``plan=``), the §4.1 oracle bridge — consumes them with
no new machinery.  The text grammar (:func:`parse` / ``Query.to_text``)
round-trips the same algebra; :class:`QueryPlan` fuses many phase-chain
queries into one shared product automaton with per-channel verdicts
(:class:`PlanMonitor`); :mod:`repro.query.adapters` gives the worked
domains their one-liners.  Full tour: ``docs/queries.md``.
"""

from .adapters import (
    aq_query,
    deadline_query,
    delivery_events,
    pq_query,
    route_delivery_query,
)
from .builder import AndQuery, ChainQuery, OrQuery, Q, QStep, Query
from .grammar import ParseError, parse, to_text
from .plan import PlanMonitor, QueryPlan

__all__ = [
    "Q",
    "Query",
    "ChainQuery",
    "OrQuery",
    "AndQuery",
    "QStep",
    "parse",
    "to_text",
    "ParseError",
    "QueryPlan",
    "PlanMonitor",
    "as_query",
    "query_acceptor",
    "query_monitor",
    "deadline_query",
    "aq_query",
    "pq_query",
    "route_delivery_query",
    "delivery_events",
]


def as_query(query) -> Query:
    """Coerce query text or a builder query to a :class:`Query`."""
    if isinstance(query, str):
        return parse(query)
    if isinstance(query, Query):
        return query
    raise TypeError(f"not a query: {query!r} (pass query text or a Q query)")


def query_acceptor(query, alphabet=None):
    """An engine-consumable acceptor for query text or a Q query."""
    return as_query(query).acceptor(alphabet)


def query_monitor(query, alphabet=None, **kwargs):
    """An online :class:`~repro.stream.monitor.TBAMonitor` for query
    text or a Q query (kwargs pass through)."""
    return as_query(query).monitor(alphabet, **kwargs)
