"""One-liner queries for the paper's worked domains.

Each adapter maps an existing domain object (a §4.1
:class:`~repro.deadlines.spec.DeadlineSpec`, the rtdb §5.1.3
``L_aq``/``L_pq`` timing patterns, a §5.2 routing delivery bound) onto
a :class:`~repro.query.builder.Query`, so the domains stop hand-rolling
automata for their *timing* obligations — ``monitor()``, ``decide``,
and :class:`~repro.query.plan.QueryPlan` all consume the result
directly.  These are timing skeletons: the domains' data encodings
(``enc(I) $ enc(u)``, usefulness curves, Section 5.2.3 hop words) stay
with their own modules; the query watches the event-level rhythm those
encodings produce.

    deadline_query(DeadlineSpec(kind=FIRM, t_d=5))    # §4.1 (ii)
    aq_query(d_q=5)                                    # eq. (9) skeleton
    pq_query(d_q=5, t_p=8)                             # eq. (10) skeleton
    route_delivery_query(bound=12)                     # §5.2 delivery

``delivery_events`` bridges the other direction: an adhoc
:class:`~repro.adhoc.messages.TraceLog` becomes the ``(symbol, t)``
stream the routing query monitors (``docs/queries.md`` walks a full
simulate-then-monitor example).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..deadlines.spec import DeadlineSpec
from ..spec.compile import from_deadline_spec
from .builder import ChainQuery, Q

__all__ = [
    "deadline_query",
    "aq_query",
    "pq_query",
    "route_delivery_query",
    "delivery_events",
]


def deadline_query(dspec: DeadlineSpec, action: Any = "done") -> ChainQuery:
    """A §4.1 deadline instance as a single-shot query.

    Routes through :func:`~repro.spec.compile.from_deadline_spec`, so
    the query accepts a completion time iff the §4.1 oracle does —
    firm deadlines (class ii) strictly before ``t_d``, step-soft ones
    (class iii) through ``t_d + grace``.  Classes the bridge cannot
    express (NONE, non-step usefulness) raise there.
    """
    bound = from_deadline_spec(dspec, action=action)
    return Q.event(bound.action, bound.lo, bound.hi).once()


def aq_query(
    d_q: int,
    *,
    issue: Any = "issue",
    answer: Any = "answer",
    issue_within: int = 0,
    grace: int = 0,
) -> ChainQuery:
    """The ``L_aq`` (eq. 9) timing skeleton: one query, one deadline.

    The query is issued within ``issue_within`` chronons of stream
    start and its answer must land strictly before ``d_q`` after the
    issue (``grace`` shifts to the step-soft class) — the aperiodic
    Section 5.1.3 obligation with the data encoding abstracted to the
    two marker events.
    """
    return (
        Q.event(issue, 0, issue_within).then(answer).deadline(d_q, grace).once()
    )


def pq_query(
    d_q: int,
    t_p: int,
    *,
    issue: Any = "issue",
    answer: Any = "answer",
    grace: int = 0,
) -> ChainQuery:
    """The ``L_pq`` (eq. 10) timing skeleton: a periodic query stream.

    Every cycle re-issues within the period ``t_p`` of the previous
    answer and answers strictly before ``d_q`` — forever (a Büchi
    obligation: a stream that stops answering is rejected, exactly the
    periodic Section 5.1.3 reading).
    """
    if t_p < 1:
        raise ValueError(f"query period t_p must be >= 1, got {t_p}")
    return Q.event(issue, 0, t_p).then(answer).deadline(d_q, grace).repeat()


def route_delivery_query(bound: int, symbol: Any = "r") -> ChainQuery:
    """The §5.2 delivery obligation: receive events keep arriving, each
    within ``bound`` chronons of the previous one (the timed version of
    "the routing process keeps delivering")."""
    if bound < 0:
        raise ValueError(f"delivery bound must be >= 0, got {bound}")
    return Q.event(symbol).within(bound).repeat()


def delivery_events(
    trace: Any, node: Optional[int] = None, symbol: Any = "r"
) -> List[Tuple[Any, int]]:
    """An adhoc :class:`~repro.adhoc.messages.TraceLog`'s receive
    records as a monitorable ``(symbol, t)`` stream (optionally only
    the hops heard by ``node``), time-ordered — feed it straight to
    ``route_delivery_query(...).monitor(...).ingest_many``."""
    out = [
        (symbol, r.received_at)
        for r in trace.receives
        if node is None or r.dst == node
    ]
    out.sort(key=lambda pair: pair[1])
    return out
