"""Compiling a timed Büchi automaton into a real-time algorithm.

Section 3.1.1 argues that Definition 3.3's machines need no clock set:
"a real-time algorithm has access to storage space, hence it can use
(part of) this storage for time-keeping purposes."  This module makes
the claim executable: :func:`tba_to_algorithm` produces a
:class:`~repro.machine.rtalgorithm.RealTimeAlgorithm` that simulates
the TBA — clock valuations live in working storage, guards are
evaluated against elapsed input time, and the subset of reachable
configurations is tracked on the fly.

Judging Büchi acceptance operationally: the program writes f whenever
the reachable configuration set contains an accepting state.  For
*deterministic* TBAs this is exact — the unique run visits F
infinitely often iff the tracked configuration is accepting infinitely
often — and :func:`tba_to_algorithm` verifies determinism by default.
(For nondeterministic TBAs the config-set proxy overapproximates:
infinitely many f's certify that accepting *configurations* recur, not
that one run threads them; pass ``allow_nondeterministic=True`` to use
it as a semi-decision anyway.)
"""

from __future__ import annotations

from typing import Any, Generator, Set, Tuple

from ..automata.timed import TimedBuchiAutomaton
from ..kernel.events import Event
from .rtalgorithm import Context, RealTimeAlgorithm

__all__ = ["tba_to_algorithm", "NondeterministicTBAError"]


class NondeterministicTBAError(ValueError):
    """The TBA has nondeterministic branching; the f-proxy is not exact."""


def _is_deterministic(tba: TimedBuchiAutomaton) -> bool:
    """Syntactic determinism: at most one transition per (state, symbol).

    (Guard-disjoint transitions would also be fine; we keep the check
    conservative and simple.)
    """
    seen: Set[Tuple[Any, Any]] = set()
    for tr in tba.transitions:
        key = (tr.source, tr.symbol)
        if key in seen:
            return False
        seen.add(key)
    return True


def tba_to_algorithm(
    tba: TimedBuchiAutomaton, allow_nondeterministic: bool = False
) -> RealTimeAlgorithm:
    """The real-time algorithm simulating ``tba``.

    Working storage holds the reachable configuration set (state ×
    clock valuation, capped at the automaton's cmax+1 region bound) and
    the previous input timestamp; each input symbol advances clocks by
    the inter-arrival gap and applies the enabled transitions.  An f is
    written whenever some reachable configuration is accepting (and the
    output-rate rule permits).  If every configuration dies, the
    machine enters s_r.
    """
    if not allow_nondeterministic and not _is_deterministic(tba):
        raise NondeterministicTBAError(
            "pass allow_nondeterministic=True to use the f-count proxy"
        )

    def program(ctx: Context) -> Generator[Event, Any, None]:
        ctx.storage["configs"] = {
            (tba.initial, tuple(0 for _ in tba.clocks))
        }
        ctx.storage["prev_t"] = 0
        while True:
            symbol, t = yield ctx.input.read()
            gap = t - ctx.storage["prev_t"]
            ctx.storage["prev_t"] = t
            configs: Set[Tuple[Any, Tuple[int, ...]]] = ctx.storage["configs"]
            nxt = tba._step_configs(configs, symbol, gap)
            ctx.storage["configs"] = nxt
            if not nxt:
                ctx.reject()  # every run died: no accepting run exists
                return
            if any(state in tba.accepting for state, _v in nxt):
                if ctx.output.can_write():
                    ctx.emit_f()

    algo = RealTimeAlgorithm(program, name="TBA-sim")
    # Keep the source automaton on the machine: judges use it to fall
    # back on exact region mathematics where the operational discipline
    # cannot decide (frozen-time lassos never reach the time horizon).
    algo.source_tba = tba
    return algo
