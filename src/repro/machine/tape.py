"""Input and output tapes of a real-time algorithm (Definition 3.3).

*Input tape*: carries a timed ω-word; the pair (σᵢ, τᵢ) means σᵢ is
available to the algorithm at precisely τᵢ and **not earlier** — the
availability rule is enforced here, not left to programmer discipline.

*Output tape*: write-only, at most one symbol per time unit.  The
algorithm cannot read back what it wrote; observers (the acceptance
judge, tests) use the separate observer API.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..kernel.events import Event, Priority, SimulationError
from ..kernel.simulator import Simulator
from ..words.timedword import Pair, TimedWord

__all__ = [
    "InputTape",
    "OutputTape",
    "TapeProtocolError",
    "DEFAULT_FEEDER_CAP",
    "ZENO_UNROLL",
    "zeno_event_cap",
]

#: Default event cap of the feeder process (infinite words are fed at
#: most this many events; simulations run to finite time anyway).
DEFAULT_FEEDER_CAP = 1_000_000

#: Loop unrollings a judge delivers from a frozen-time lasso before
#: cutting the feed off (see :func:`zeno_event_cap`).
ZENO_UNROLL = 64


def zeno_event_cap(word: Any) -> Optional[int]:
    """Event cap for words whose time stalls forever (shift-0 lassos).

    A lasso word with ``shift == 0`` repeats its loop at one frozen
    timestamp, so a time-bounded judge never outruns it: without a cap
    the feeder grinds to :data:`DEFAULT_FEEDER_CAP` events (seconds of
    work) before giving up.  Delivering the prefix plus
    :data:`ZENO_UNROLL` loop unrollings gives any absorbing verdict the
    same chance to fire — the tracked configuration set cycles at the
    frozen instant long before that — at a bounded cost.  Returns
    ``None`` for every other shape: finite words and functional words
    also carry the dataclass default ``shift == 0``, but only a lasso
    (non-empty ``loop``, no ``fn``) can freeze time forever.
    """
    if (
        getattr(word, "shift", None) == 0
        and getattr(word, "fn", None) is None
        and getattr(word, "loop", ())
    ):
        return len(getattr(word, "prefix", ())) + ZENO_UNROLL * len(word.loop)
    return None


class TapeProtocolError(SimulationError):
    """Violation of Definition 3.3 tape semantics."""


class InputTape:
    """Feeds a timed ω-word into the simulation.

    A feeder process walks the word and deposits each symbol at its
    timestamp (HIGH priority, so symbols are available before ordinary
    processes inspect the tape at the same instant).  Algorithms
    consume via:

    * :meth:`read` — event yielding the next pair in word order (blocks
      until it is available);
    * :meth:`poll` — all pairs that have arrived but not been ``read``;
    * :meth:`current_symbol` — the most recently *arrived* symbol (what
      Section 4.1's monitor P_m calls "the current symbol").

    ``horizon`` caps how far an infinite word is fed; the feeder stops
    quietly there (simulations always run to finite time anyway).

    Passing ``word=None`` creates a *push-driven* tape: no feeder
    process runs, and symbols arrive one at a time through :meth:`push`
    — how :mod:`repro.stream` feeds live events into an acceptor that
    was written against the batch tape.
    """

    def __init__(
        self,
        sim: Simulator,
        word: Optional[TimedWord],
        horizon: int = DEFAULT_FEEDER_CAP,
    ):
        self.sim = sim
        self.word = word
        self.horizon = horizon
        self._arrived: Deque[Pair] = deque()
        self._history: List[Pair] = []
        self._waiters: Deque[Event] = deque()
        self._last_symbol: Optional[Pair] = None
        self.delivered = 0
        if word is not None:
            sim.process(self._feeder(), name="input-tape")

    def _feeder(self):
        i = 0
        while i < self.horizon:
            try:
                symbol, t = self.word[i]
            except IndexError:
                return
            delay = t - self.sim.now
            if delay < 0:
                raise TapeProtocolError(
                    f"input word time went backwards at index {i} (t={t}, now={self.sim.now})"
                )
            if delay:
                yield self.sim.timeout(delay, priority=Priority.HIGH)
            self._deliver((symbol, t))
            i += 1

    def push(self, symbol: Any, t: int) -> None:
        """Schedule one pair for delivery at time ``t`` (push-driven tapes).

        The pair becomes available at exactly ``t`` with the same HIGH
        priority the feeder uses, so a consumer blocked on :meth:`read`
        wakes before ordinary processes at that instant.  Pushing into
        the past violates the availability rule and raises
        :class:`TapeProtocolError`.
        """
        delay = t - self.sim.now
        if delay < 0:
            raise TapeProtocolError(
                f"cannot push symbol at t={t}: simulation is already at {self.sim.now}"
            )
        pair = (symbol, t)
        if delay == 0:
            self._deliver(pair)
        else:
            ev = self.sim.timeout(delay, priority=Priority.HIGH)
            ev.add_callback(lambda _ev: self._deliver(pair))

    def _deliver(self, pair: Pair) -> None:
        self.delivered += 1
        self._last_symbol = pair
        self._history.append(pair)
        if self._waiters:
            self._waiters.popleft().succeed(pair, priority=Priority.HIGH)
        else:
            self._arrived.append(pair)

    # -- consumer API ------------------------------------------------------
    def read(self) -> Event:
        """Event firing with the next (symbol, time) pair in word order."""
        ev = self.sim.event(name="tape.read")
        if self._arrived:
            ev.succeed(self._arrived.popleft(), priority=Priority.HIGH)
        else:
            self._waiters.append(ev)
        return ev

    def poll(self) -> List[Pair]:
        """Drain every already-arrived, not-yet-read pair (no blocking)."""
        out = list(self._arrived)
        self._arrived.clear()
        return out

    def peek_pending(self) -> List[Pair]:
        """Arrived-but-unread pairs *without* consuming them.

        For observers (e.g. a monitor process checking whether the
        worker has caught up with the tape) that must not steal input
        from the reading process.
        """
        return list(self._arrived)

    def current_symbol(self) -> Optional[Any]:
        """The most recently arrived symbol (None before any arrival).

        This is the monitor's view in Section 4.1: "if, at the moment
        P_w terminates, the current symbol is w …".
        """
        return self._last_symbol[0] if self._last_symbol else None

    def current_pair(self) -> Optional[Pair]:
        return self._last_symbol

    @property
    def arrived_count(self) -> int:
        """Total symbols made available so far."""
        return self.delivered

    def arrived_history(self) -> List[Pair]:
        """Observer API: every pair delivered so far (judges/tests only)."""
        return list(self._history)


class OutputTape:
    """Write-only output stream o(A, w) with the one-symbol-per-chronon
    rule of Definition 3.3."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._writes: List[Pair] = []
        self._last_write_time: Optional[int] = None

    def write(self, symbol: Any) -> None:
        """Append one symbol at the current instant.

        Raises :class:`TapeProtocolError` on a second write within the
        same time unit — "during any time unit, A may add at most one
        symbol to the output tape".
        """
        now = self.sim.now
        if self._last_write_time is not None and now <= self._last_write_time:
            raise TapeProtocolError(
                f"second output write within time unit {now} "
                "(Definition 3.3 allows at most one per unit)"
            )
        self._last_write_time = now
        self._writes.append((symbol, now))

    def can_write(self) -> bool:
        """Would a write at the current instant be legal?"""
        return self._last_write_time is None or self.sim.now > self._last_write_time

    # -- observer API (not visible to the algorithm) -----------------------
    def observed_contents(self) -> List[Pair]:
        """(symbol, time) pairs written so far — judge's view only."""
        return list(self._writes)

    def count(self, symbol: Any) -> int:
        """|o(A, w)|_symbol over the writes so far."""
        return sum(1 for s, _t in self._writes if s == symbol)

    def written_since(self, n: int) -> List[Pair]:
        """Writes with index ≥ ``n`` — lets incremental observers (the
        stream monitor) track new output in O(new) instead of rescanning."""
        return self._writes[n:]

    def __len__(self) -> int:
        return len(self._writes)
