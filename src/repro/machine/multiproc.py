"""Multiprocessor real-time algorithms — rt-PROC made concrete.

Section 3.2's rt-PROC(f) classes presuppose a p-processor variant of
the Definition 3.3 machine.  This module provides one faithful to the
paper's granularity conventions: p workers share the input tape and the
(single) output tape; each worker performs at most one unit-work step
per chronon (the input-side mirror of the output tape's one-symbol-per-
chronon rule).  The shared output tape keeps Definition 3.4 acceptance
unchanged: the *system* accepts by writing f forever.

:class:`MultiProcessorAlgorithm` runs p copies of a worker program plus
one supervisor; :func:`stream_echo_acceptor` expresses the k-stream
echo language of :mod:`repro.complexity.hierarchy` on it, so the
hierarchy experiment can be cross-validated against the actual machine
model rather than the abstract queue recursion.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..kernel.events import Event
from ..kernel.resources import Store


from .rtalgorithm import Context, RealTimeAlgorithm


__all__ = ["MultiProcessorAlgorithm", "stream_echo_acceptor"]

#: A worker program: generator over (worker id, Context, work Store).
WorkerProgram = Callable[[int, Context, Store], Generator[Event, Any, Any]]
#: The supervisor: reads the tape, distributes work, declares verdicts.
Supervisor = Callable[[Context, Store], Generator[Event, Any, Any]]


class MultiProcessorAlgorithm(RealTimeAlgorithm):
    """A p-processor real-time algorithm.

    The ``supervisor`` reads the input tape (it is the machine's finite
    control); it deposits work items into the shared store, from which
    each of the p ``worker`` processes draws.  Workers spend at least
    one chronon per item (enforced: drawing is free, completing work
    costs ``max(1, duration)``), realizing the one-unit-per-chronon
    processor granularity that rt-PROC counts.
    """

    def __init__(
        self,
        p: int,
        supervisor: Supervisor,
        worker: WorkerProgram,
        name: str = "rt-PROC machine",
        space_limit: Optional[int] = None,
    ):
        if p <= 0:
            raise ValueError("need at least one processor")
        self.p = p
        self.supervisor = supervisor
        self.worker = worker
        super().__init__(self._program, name=name, space_limit=space_limit)

    def _program(self, ctx: Context) -> Generator[Event, Any, None]:
        work: Store = Store(ctx.sim)
        for wid in range(self.p):
            ctx.sim.process(
                self._paced_worker(wid, ctx, work), name=f"proc-{wid}"
            )
        yield from self.supervisor(ctx, work)

    def _paced_worker(self, wid: int, ctx: Context, work: Store):
        gen = self.worker(wid, ctx, work)
        return gen


def stream_echo_acceptor(
    p: int, deadline: int, miss_limit: int = 1
) -> MultiProcessorAlgorithm:
    """The k-stream echo language acceptor on p processors.

    Input: the :func:`repro.complexity.hierarchy.stream_word` shape — k
    symbols per chronon (any k; the machine does not need to know it).
    Each symbol must be *processed* (one chronon of work by some
    processor) within ``deadline`` chronons of its arrival.  The
    supervisor rejects on the first deadline miss; if no miss occurs
    for a probation window comfortably past the backlog horizon, it
    accepts (the run is then periodic and misses can no longer occur).
    """

    def supervisor(ctx: Context, work: Store) -> Generator[Event, Any, None]:
        # Feed every tape symbol into the work store, stamped.
        stats = ctx.storage
        stats["fed"] = 0
        stats["done"] = 0
        stats["missed"] = 0

        def feeder() -> Generator[Event, Any, None]:
            while True:
                sym, t = yield ctx.input.read()
                stats["fed"] = stats["fed"] + 1
                yield work.put((sym, t))

        ctx.sim.process(feeder(), name="supervisor-feeder")
        # Probation: if the backlog were growing, a miss occurs by
        # deadline·k/(k−p)+2 ≤ deadline·(p+1)+2 chronons for any k > p;
        # we watch for twice that, then declare acceptance.
        probation = 2 * (deadline * (p + 1) + 2)
        while ctx.sim.now < probation:
            if stats["missed"] >= miss_limit:
                ctx.reject()
                return
            yield ctx.timeout(1)
        if stats["missed"] >= miss_limit:
            ctx.reject()
        else:
            ctx.accept()

    def worker(wid: int, ctx: Context, work: Store) -> Generator[Event, Any, None]:
        stats = ctx.storage
        while True:
            sym, arrived = yield work.get()
            yield ctx.timeout(1)  # one chronon of processing
            stats["done"] = stats["done"] + 1
            if ctx.sim.now - arrived > deadline:
                stats["missed"] = stats["missed"] + 1

    return MultiProcessorAlgorithm(p, supervisor, worker, name=f"echo[p={p}]")
