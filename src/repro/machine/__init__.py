"""The paper's acceptor model: real-time algorithms (Defs. 3.3–3.4)."""

from .from_tba import NondeterministicTBAError, tba_to_algorithm
from .monitor import WorkerMonitorAcceptor, WorkerSignal
from .multiproc import MultiProcessorAlgorithm, stream_echo_acceptor
from .rtalgorithm import (
    ACCEPT_SYMBOL,
    Context,
    DecisionReport,
    RealTimeAlgorithm,
    SpaceLimitExceeded,
    Verdict,
    WorkingStorage,
)
from .tape import InputTape, OutputTape, TapeProtocolError

__all__ = [
    "RealTimeAlgorithm",
    "Context",
    "DecisionReport",
    "Verdict",
    "ACCEPT_SYMBOL",
    "WorkingStorage",
    "SpaceLimitExceeded",
    "InputTape",
    "OutputTape",
    "TapeProtocolError",
    "WorkerMonitorAcceptor",
    "WorkerSignal",
    "MultiProcessorAlgorithm",
    "stream_echo_acceptor",
    "tba_to_algorithm",
    "NondeterministicTBAError",
]
