"""The real-time algorithm — Definitions 3.3 and 3.4.

A real-time algorithm A consists of a finite control (a program), an
input tape containing a timed ω-word, and a write-only output tape.  It
may use an unbounded store of which any single computation touches a
finite amount (metered here for the rt-SPACE classes of Section 3.2).

Acceptance (Definition 3.4): A accepts L iff for every input w,
|o(A, w)|_f = ω ⟺ w ∈ L.  "Infinitely many f's" is judged through the
absorbing-verdict discipline the paper's own acceptors use: each
Section 4/5 acceptor eventually enters s_f (and writes f every chronon
forever) or s_r (and never writes f again).  The judge therefore
reports ACCEPT/REJECT when the program declares the absorbing state,
and additionally exposes raw f-counts over finite horizons for
machines that never declare one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..engine.verdict import DecisionReport, Verdict
from ..kernel.events import Event, SimulationError
from ..kernel.simulator import Simulator
from ..obs import hooks as _obs
from ..words.timedword import TimedWord
from .tape import DEFAULT_FEEDER_CAP, InputTape, OutputTape, zeno_event_cap

__all__ = [
    "ACCEPT_SYMBOL",
    "Verdict",
    "SpaceLimitExceeded",
    "WorkingStorage",
    "Context",
    "RealTimeAlgorithm",
    "DecisionReport",
]

#: The designated output symbol f of Definition 3.4.
ACCEPT_SYMBOL = "f"


class SpaceLimitExceeded(SimulationError):
    """The program exceeded its rt-SPACE bound."""


class WorkingStorage:
    """Metered working storage (outside the input/output tapes).

    A dict-like store that tracks current and peak usage in *cells*
    (keys); an optional ``limit`` enforces a space bound, which is how
    :mod:`repro.complexity` realizes rt-SPACE(f) memberships.
    """

    def __init__(self, limit: Optional[int] = None):
        self.limit = limit
        self._cells: Dict[Any, Any] = {}
        self.peak = 0

    def __setitem__(self, key: Any, value: Any) -> None:
        if key not in self._cells and self.limit is not None and len(self._cells) + 1 > self.limit:
            raise SpaceLimitExceeded(
                f"write to {key!r} exceeds space limit {self.limit}"
            )
        self._cells[key] = value
        self.peak = max(self.peak, len(self._cells))

    def __getitem__(self, key: Any) -> Any:
        return self._cells[key]

    def get(self, key: Any, default: Any = None) -> Any:
        return self._cells.get(key, default)

    def __delitem__(self, key: Any) -> None:
        del self._cells[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._cells

    @property
    def used(self) -> int:
        return len(self._cells)

    def __len__(self) -> int:
        return len(self._cells)


class Context:
    """Everything a program sees: tapes, storage, clock, and the
    accept/reject absorbing-state controls."""

    def __init__(self, sim: Simulator, tape: InputTape, output: OutputTape, storage: WorkingStorage):
        self.sim = sim
        self.input = tape
        self.output = output
        self.storage = storage
        self.verdict = Verdict.UNDECIDED
        self._verdict_event: Event = sim.event(name="verdict")

    @property
    def now(self) -> int:
        return self.sim.now

    def timeout(self, delay: int) -> Event:
        return self.sim.timeout(delay)

    # -- absorbing states s_f / s_r --------------------------------------
    def accept(self) -> None:
        """Enter s_f: from now on the machine writes f every chronon.

        "The first appearance of f signals a successful computation,
        and the subsequent occurrences … respect the acceptance
        condition" (Section 3.1.1).
        """
        if self.verdict is not Verdict.UNDECIDED:
            raise SimulationError(f"verdict already {self.verdict}")
        self.verdict = Verdict.ACCEPT
        self.sim.process(self._emit_f_forever(), name="s_f")
        self._verdict_event.succeed(Verdict.ACCEPT)

    def reject(self) -> None:
        """Enter s_r: cycle forever without touching the output tape."""
        if self.verdict is not Verdict.UNDECIDED:
            raise SimulationError(f"verdict already {self.verdict}")
        self.verdict = Verdict.REJECT
        self._verdict_event.succeed(Verdict.REJECT)

    def emit_f(self) -> None:
        """Write one f now (periodic acceptors: one f per served query)."""
        self.output.write(ACCEPT_SYMBOL)

    def _emit_f_forever(self) -> Generator[Event, Any, None]:
        while True:
            if self.output.can_write():
                self.output.write(ACCEPT_SYMBOL)
            yield self.sim.timeout(1)

    @property
    def verdict_event(self) -> Event:
        """Fires when the program declares an absorbing verdict."""
        return self._verdict_event


Program = Callable[[Context], Generator[Event, Any, Any]]

# Verdict and DecisionReport are the engine-wide vocabulary now; see
# repro.engine.verdict.  Re-exported here for the historical import
# path (``from repro.machine import Verdict``).


class RealTimeAlgorithm:
    """A runnable real-time algorithm: program + tape wiring + judge.

    ``program`` is a generator function taking a :class:`Context`; it
    runs as a kernel process, reads the input tape, may write the
    output tape, and normally ends by calling ``ctx.accept()`` or
    ``ctx.reject()`` (the absorbing states of the paper's acceptors).

    The two judge entry points:

    * :meth:`decide` — run until a verdict is declared or ``horizon``
      chronons pass; the paper's acceptors always declare one.
    * :meth:`count_f` — raw |o(A, w)[:horizon]|_f for machines judged
      by f-rate instead (e.g. periodic-query acceptors).
    """

    #: The TBA this machine simulates, when it was produced by
    #: :func:`repro.machine.from_tba.tba_to_algorithm` — lets judges
    #: fall back on exact region mathematics where the operational
    #: discipline cannot decide (frozen-time lassos).
    source_tba: Optional[Any] = None

    def __init__(self, program: Program, name: str = "A", space_limit: Optional[int] = None):
        self.program = program
        self.name = name
        self.space_limit = space_limit

    def _build(self, word: TimedWord) -> Context:
        sim = Simulator()
        # Frozen-time lassos never outrun the time horizon; cap their
        # feed so the judge stays O(decision point) instead of grinding
        # to the feeder's default cap (see tape.zeno_event_cap).
        cap = zeno_event_cap(word)
        tape = InputTape(
            sim, word, horizon=DEFAULT_FEEDER_CAP if cap is None else cap
        )
        out = OutputTape(sim)
        storage = WorkingStorage(limit=self.space_limit)
        ctx = Context(sim, tape, out, storage)
        sim.process(self.program(ctx), name=self.name)
        return ctx

    def _report_run(self, mode: str, report: DecisionReport) -> DecisionReport:
        """Publish one judged run to the installed hooks, if any."""
        h = _obs.HOOKS
        if h is not None:
            h.count("machine.runs", mode=mode)
            h.count("machine.verdicts", verdict=report.verdict.value)
            if report.f_count:
                h.count("machine.f_symbols", report.f_count)
            h.observe("machine.space_peak", report.space_peak)
            if report.decided_at is not None:
                h.observe("machine.decision_chronon", report.decided_at)
        return report

    @_obs.spanned(
        "machine.decide",
        args=lambda self, word, horizon=10_000: {"algorithm": self.name, "horizon": horizon},
    )
    def decide(self, word: TimedWord, horizon: int = 10_000) -> DecisionReport:
        """Judge acceptance of ``word`` (Definition 3.4 discipline)."""
        return self._report_run("decide", self._decide(word, horizon))

    def _decide(self, word: TimedWord, horizon: int) -> DecisionReport:
        ctx = self._build(word)
        decided_at: Optional[int] = None
        # Run until the verdict fires or the horizon passes.
        while ctx.verdict is Verdict.UNDECIDED:
            nxt = ctx.sim.peek()
            if nxt is None or nxt > horizon:
                break
            ctx.sim.step()
        if ctx.verdict is not Verdict.UNDECIDED:
            decided_at = ctx.sim.now
            # Let the absorbing state demonstrate itself briefly so the
            # f-count reflects Definition 3.4's "infinitely many f".
            ctx.sim.run(until=min(horizon, ctx.sim.now + 16))
        return DecisionReport(
            verdict=ctx.verdict,
            f_count=ctx.output.count(ACCEPT_SYMBOL),
            horizon=horizon,
            space_peak=ctx.storage.peak,
            decided_at=decided_at,
        )

    @_obs.spanned(
        "machine.count_f",
        args=lambda self, word, horizon: {"algorithm": self.name, "horizon": horizon},
    )
    def count_f(self, word: TimedWord, horizon: int) -> DecisionReport:
        """Run for exactly ``horizon`` chronons and count the f's."""
        return self._report_run("count_f", self._count_f(word, horizon))

    def _count_f(self, word: TimedWord, horizon: int) -> DecisionReport:
        ctx = self._build(word)
        ctx.sim.run(until=horizon)
        return DecisionReport(
            verdict=ctx.verdict,
            f_count=ctx.output.count(ACCEPT_SYMBOL),
            horizon=horizon,
            space_peak=ctx.storage.peak,
            decided_at=None,
        )
