"""The two-process worker/monitor acceptor harness of Section 4.

Both Section 4.1 (deadlines) and Section 4.2 (data accumulation) build
their acceptors from the same two processes:

* **P_w** — an algorithm that solves the underlying problem Π on the
  input carried by the ω-word, storing its solution in designated
  memory and signalling the monitor at significant points (termination
  in Section 4.1; per-datum completion in Section 4.2);
* **P_m** — monitors the input tape and, on each worker signal,
  inspects "the current symbol" and imposes s_f or s_r on the whole
  acceptor.

:class:`WorkerMonitorAcceptor` wires these up over the
:class:`~repro.machine.rtalgorithm.RealTimeAlgorithm` substrate.  The
concrete worker/monitor behaviours are injected by the Section 4.1/4.2
modules.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..kernel.events import Event
from ..kernel.resources import Store

from .rtalgorithm import Context, RealTimeAlgorithm, Verdict

__all__ = ["WorkerSignal", "WorkerMonitorAcceptor"]


class WorkerSignal:
    """A progress signal from P_w to P_m."""

    def __init__(self, kind: str, payload: Any = None, at: int = 0):
        self.kind = kind  # e.g. "done", "datum-processed"
        self.payload = payload
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover
        return f"WorkerSignal({self.kind!r}, at={self.at})"


#: A worker is a generator over (ctx, signals-store); it yields kernel
#: events and puts WorkerSignal objects into the store.
Worker = Callable[[Context, Store], Generator[Event, Any, Any]]

#: A monitor decision: given ctx and a signal, return ACCEPT / REJECT /
#: None (keep monitoring).
MonitorDecision = Callable[[Context, WorkerSignal], Optional[Verdict]]


class WorkerMonitorAcceptor(RealTimeAlgorithm):
    """The Section 4 acceptor: P_w computes, P_m judges.

    ``worker`` performs the computation (reading ``ctx.input`` as it
    pleases) and reports through the signal store.  ``monitor_decision``
    is evaluated by P_m on every signal; its first non-None verdict is
    imposed on the whole acceptor (``ctx.accept()`` / ``ctx.reject()``).
    """

    def __init__(
        self,
        worker: Worker,
        monitor_decision: MonitorDecision,
        name: str = "P_w||P_m",
        space_limit: Optional[int] = None,
    ):
        self.worker = worker
        self.monitor_decision = monitor_decision
        super().__init__(self._program, name=name, space_limit=space_limit)

    def _program(self, ctx: Context) -> Generator[Event, Any, None]:
        signals: Store[WorkerSignal] = Store(ctx.sim)
        worker_proc = ctx.sim.process(self.worker(ctx, signals), name="P_w")

        def p_m() -> Generator[Event, Any, None]:
            while ctx.verdict is Verdict.UNDECIDED:
                sig = yield signals.get()
                sig.at = ctx.sim.now
                verdict = self.monitor_decision(ctx, sig)
                if verdict is Verdict.ACCEPT:
                    ctx.accept()
                    return
                if verdict is Verdict.REJECT:
                    ctx.reject()
                    return

        ctx.sim.process(p_m(), name="P_m")
        # The outer program simply hosts the two processes; it ends when
        # the worker does (the monitor may outlive it waiting for more
        # signals, which is fine — s_f/s_r are absorbing anyway).
        yield worker_proc
