"""Deadline specifications — Section 4.1.

Deadlines are classified as **firm** (a computation that exceeds the
deadline is useless) or **soft** (usefulness decreases as time elapses)
[paper, citing Lehr–Kim–Son].  The paper's worked example of a soft
deadline is

    "the usefulness of this transaction is max before 20 seconds
     elapsed; after this deadline, the usefulness is given by
     u(t) = max × 1/(t − 20)"

which is :class:`HyperbolicUsefulness`.  A usefulness function maps
[t_d, ∞) → ℕ ∩ [0, max]; encodings store ⌊u(t)⌋ (paper eq. (3)).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Set, Tuple

__all__ = [
    "DeadlineKind",
    "UsefulnessFunction",
    "HyperbolicUsefulness",
    "LinearDecayUsefulness",
    "StepUsefulness",
    "DeadlineSpec",
    "Problem",
    "DeadlineInstance",
]


class DeadlineKind(Enum):
    """The paper's three instance classes (Section 4.1 (i)–(iii))."""

    NONE = "none"
    FIRM = "firm"
    SOFT = "soft"


class UsefulnessFunction:
    """u : [t_d, ∞) → ℕ ∩ [0, max]; must eventually stabilize.

    All usefulness functions decay to a limit value (0 for every
    built-in) after finitely many chronons; ``stable_after`` returns a
    bound so the word encoder can fold the tail into a lasso loop.
    """

    max_value: int

    def __call__(self, t: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def stable_after(self, t_d: int) -> int:
        """A time T ≥ t_d with u constant on [T, ∞)."""
        raise NotImplementedError


@dataclass(frozen=True)
class HyperbolicUsefulness(UsefulnessFunction):
    """The paper's example: u(t) = max · 1/(t − t_d), floored.

    At t = t_d the value is clamped to max (the paper's example reads
    "max before [the deadline]").
    """

    max_value: int
    t_d: int

    def __call__(self, t: int) -> int:
        if t <= self.t_d:
            return self.max_value
        return min(self.max_value, self.max_value // (t - self.t_d))

    def stable_after(self, t_d: int) -> int:
        # max // (t - t_d) hits 0 once t - t_d > max.
        return self.t_d + self.max_value + 1


@dataclass(frozen=True)
class LinearDecayUsefulness(UsefulnessFunction):
    """u(t) = max(0, max − slope·(t − t_d))."""

    max_value: int
    t_d: int
    slope: int = 1

    def __call__(self, t: int) -> int:
        if t <= self.t_d:
            return self.max_value
        return max(0, self.max_value - self.slope * (t - self.t_d))

    def stable_after(self, t_d: int) -> int:
        return self.t_d + (self.max_value // max(1, self.slope)) + 1


@dataclass(frozen=True)
class StepUsefulness(UsefulnessFunction):
    """u(t) = max until t_d + grace, then 0 (a firm-with-grace shape)."""

    max_value: int
    t_d: int
    grace: int = 0

    def __call__(self, t: int) -> int:
        return self.max_value if t <= self.t_d + self.grace else 0

    def stable_after(self, t_d: int) -> int:
        return self.t_d + self.grace + 1


@dataclass(frozen=True)
class DeadlineSpec:
    """Which of the three Section 4.1 classes an instance belongs to.

    ``min_acceptable`` is the σ₁ ∈ ℕ ∩ (0, max] symbol of cases
    (ii)/(iii): the minimum usefulness at which a late result still
    counts.  (The paper writes the interval as [max, 0); we read it as
    the positive range, which is the only reading under which the firm
    case behaves as described — a post-deadline usefulness of 0 never
    meets a positive threshold.)
    """

    kind: DeadlineKind
    t_d: Optional[int] = None
    usefulness: Optional[UsefulnessFunction] = None
    min_acceptable: int = 1

    def __post_init__(self) -> None:
        if self.kind is DeadlineKind.NONE:
            if self.t_d is not None:
                raise ValueError("no-deadline instances take no t_d")
            return
        if self.t_d is None or self.t_d <= 0:
            raise ValueError(f"{self.kind.value} deadline requires t_d > 0")
        if self.min_acceptable <= 0:
            raise ValueError("min_acceptable must be positive")
        if self.kind is DeadlineKind.SOFT and self.usefulness is None:
            raise ValueError("soft deadline requires a usefulness function")

    def usefulness_at(self, t: int) -> int:
        """⌊u(t)⌋ for the encodings (0 forever for firm deadlines)."""
        if self.kind is DeadlineKind.NONE:
            raise ValueError("no-deadline instances have no usefulness")
        if t < self.t_d:  # type: ignore[operator]
            raise ValueError("usefulness is defined from the deadline on")
        if self.kind is DeadlineKind.FIRM:
            return 0
        assert self.usefulness is not None
        return int(self.usefulness(t))


@dataclass(frozen=True)
class Problem:
    """The underlying problem Π: a solver oracle plus a cost model.

    ``solutions(ι)`` returns the set of correct outputs (the paper's
    P_w "nondeterministically chooses that solution that matches the
    proposed solution … if such a solution exists" — having the whole
    set makes that choice executable).  ``duration(ι)`` is the time
    P_w's computation takes on input ι.
    """

    name: str
    solutions: Callable[[Tuple], Set[Tuple]]
    duration: Callable[[Tuple], int]


@dataclass(frozen=True)
class DeadlineInstance:
    """One instance of Π with a proposed output and a deadline class."""

    problem: Problem
    input_word: Tuple
    proposed_output: Tuple
    spec: DeadlineSpec

    @property
    def n(self) -> int:
        """Input size (paper's n)."""
        return len(self.input_word)

    @property
    def m(self) -> int:
        """Output size (paper's m)."""
        return len(self.proposed_output)

    def completion_time(self) -> int:
        """When P_w terminates (all input is available at time 0)."""
        return self.problem.duration(self.input_word)

    def oracle(self) -> bool:
        """Ground-truth membership of the encoded word in L(Π).

        An ω-word is in L(Π) iff an algorithm solving Π "outputs the
        output from x either within the imposed deadline (if any), or
        at a time when the usefulness … is not below the acceptable
        limit".
        """
        correct = self.proposed_output in self.problem.solutions(self.input_word)
        if not correct:
            return False
        if self.spec.kind is DeadlineKind.NONE:
            return True
        t_done = self.completion_time()
        if t_done < self.spec.t_d:  # type: ignore[operator]
            return True
        return self.spec.usefulness_at(t_done) >= self.spec.min_acceptable
