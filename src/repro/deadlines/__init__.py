"""Computing with deadlines — Section 4.1 of the paper."""

from .acceptor import (
    deadline_acceptor,
    decide_instance,
    language_of,
    sorting_problem,
)
from .encode import DEADLINE, WAIT, DecodedHeader, decode_prefix, encode_instance
from .spec import (
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    HyperbolicUsefulness,
    LinearDecayUsefulness,
    Problem,
    StepUsefulness,
    UsefulnessFunction,
)

__all__ = [
    "DeadlineKind",
    "DeadlineSpec",
    "DeadlineInstance",
    "Problem",
    "UsefulnessFunction",
    "HyperbolicUsefulness",
    "LinearDecayUsefulness",
    "StepUsefulness",
    "encode_instance",
    "decode_prefix",
    "DecodedHeader",
    "WAIT",
    "DEADLINE",
    "deadline_acceptor",
    "decide_instance",
    "language_of",
    "sorting_problem",
]
