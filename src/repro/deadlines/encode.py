"""Instance → timed ω-word encodings of Section 4.1 (cases (i)–(iii)).

The word alphabet is Σ ∪ Ω ∪ (ℕ ∩ [0, max]) ∪ {w, d} with Σ, Ω, ℕ
disjoint.  We realize the disjointness structurally: input symbols are
tagged ``("I", x)``, output symbols ``("O", y)``, usefulness values are
plain ints, and the wait/deadline markers are the strings ``"w"`` and
``"d"`` (the paper's w and d, "signalling that the deadline passed").

Shapes produced (all lasso words, hence decidable downstream):

(i)   o ι at time 0, then w at times 1, 2, 3, …
(ii)  min_acc o ι at time 0, w up to the deadline, then the pairs
      (d, 0)(d, 0)… two per chronon — eq. (2);
(iii) as (ii) but (d, ⌊u(τ)⌋) — eq. (3) — with the decaying u-values in
      the lasso prefix and the stabilized tail in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..words.timedword import Pair, TimedWord
from .spec import DeadlineInstance, DeadlineKind

__all__ = ["WAIT", "DEADLINE", "encode_instance", "decode_prefix", "DecodedHeader"]

WAIT = "w"
DEADLINE = "d"


def _header_pairs(instance: DeadlineInstance) -> List[Pair]:
    """The time-0 block: [min_acc] o ι (paper's σ₁ … σ_{m+n(+1)})."""
    pairs: List[Pair] = []
    if instance.spec.kind is not DeadlineKind.NONE:
        pairs.append((instance.spec.min_acceptable, 0))
    pairs.extend((("O", y), 0) for y in instance.proposed_output)
    pairs.extend((("I", x), 0) for x in instance.input_word)
    return pairs


def encode_instance(instance: DeadlineInstance) -> TimedWord:
    """Build the timed ω-word of Section 4.1 for one instance."""
    spec = instance.spec
    header = _header_pairs(instance)

    if spec.kind is DeadlineKind.NONE:
        # (i): w's arrive one per chronon forever.
        return TimedWord.lasso(prefix=header, loop=[(WAIT, 1)], shift=1)

    t_d = spec.t_d
    assert t_d is not None
    prefix = list(header)
    # w symbols at times 1 … t_d − 1 ("if τ_i < t_d … σ_i = w").
    prefix.extend((WAIT, t) for t in range(1, t_d))

    if spec.kind is DeadlineKind.FIRM:
        # (ii): (d, 0) pairs, two symbols per chronon, forever — eq. (2).
        return TimedWord.lasso(
            prefix=prefix, loop=[(DEADLINE, t_d), (0, t_d)], shift=1
        )

    # (iii): (d, ⌊u(τ)⌋) pairs — eq. (3).  u decays for finitely many
    # chronons (UsefulnessFunction.stable_after), after which the pair
    # is constant and lives in the loop.
    assert spec.usefulness is not None
    t_stable = max(t_d, spec.usefulness.stable_after(t_d))
    for t in range(t_d, t_stable):
        prefix.append((DEADLINE, t))
        prefix.append((spec.usefulness_at(t), t))
    stable_value = spec.usefulness_at(t_stable)
    return TimedWord.lasso(
        prefix=prefix,
        loop=[(DEADLINE, t_stable), (stable_value, t_stable)],
        shift=1,
    )


@dataclass(frozen=True)
class DecodedHeader:
    """The time-0 block parsed back out of an encoded word."""

    min_acceptable: Optional[int]
    proposed_output: Tuple[Any, ...]
    input_word: Tuple[Any, ...]

    @property
    def has_deadline(self) -> bool:
        return self.min_acceptable is not None


def decode_prefix(pairs: List[Pair]) -> DecodedHeader:
    """Parse the time-0 block [min_acc] o ι from arrived pairs.

    This is what the acceptor's worker does at time 0: the alphabets
    are disjoint, so parsing is by tag.
    """
    time0 = [s for s, t in pairs if t == 0]
    idx = 0
    min_acc: Optional[int] = None
    if time0 and isinstance(time0[0], int):
        min_acc = time0[0]
        idx = 1
    out: List[Any] = []
    while idx < len(time0) and isinstance(time0[idx], tuple) and time0[idx][0] == "O":
        out.append(time0[idx][1])
        idx += 1
    inp: List[Any] = []
    while idx < len(time0) and isinstance(time0[idx], tuple) and time0[idx][0] == "I":
        inp.append(time0[idx][1])
        idx += 1
    if idx != len(time0):
        raise ValueError(f"malformed time-0 block: {time0!r}")
    return DecodedHeader(min_acc, tuple(out), tuple(inp))
