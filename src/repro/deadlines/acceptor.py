"""The L(Π) acceptor of Section 4.1, on the worker/monitor substrate.

P_w solves Π on the input carried by the ω-word and signals when done;
P_m then inspects the current input symbol:

* ``w``  (or still inside the time-0 block) — the deadline has not
  passed: accept iff the computed solution matches the proposed one;
* ``d``  — the deadline passed: fetch the current usefulness measure
  from the input, reject if it is below the minimum acceptable one,
  otherwise compare solutions as before.

Once in s_f the acceptor writes f every chronon (so |o(A,w)|_f = ω);
in s_r it never writes f again — Definition 3.4's condition holds by
construction.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional, Tuple

from .. import engine
from ..kernel.events import Event
from ..kernel.resources import Store
from ..machine.monitor import WorkerMonitorAcceptor, WorkerSignal
from ..machine.rtalgorithm import Context, Verdict
from ..obs import hooks as _obs
from ..words.language import PredicateLanguage
from ..words.timedword import TimedWord
from .encode import DEADLINE, decode_prefix, encode_instance
from .spec import (
    DeadlineInstance,
    Problem,
)

__all__ = ["deadline_acceptor", "decide_instance", "language_of", "sorting_problem"]


def _current_usefulness(ctx: Context) -> int:
    """The latest usefulness value the input has delivered.

    After the deadline the word alternates d, ⌊u(τ)⌋; the most recent
    int symbol in the arrival history is the current measure.  If only
    the d marker has arrived so far this chronon, fall back to the
    minimum-usefulness position's partner from the previous pair (the
    history always contains one within a chronon of the deadline).
    """
    for sym, _t in reversed(ctx.input.arrived_history()):
        if isinstance(sym, int) and not isinstance(sym, bool):
            # Skip the time-0 min_acceptable header symbol: it is the
            # *first* int in history, never the last after the deadline
            # unless no usefulness value arrived yet.
            return sym
    raise ValueError("no usefulness value on the tape yet")


def _deadline_passed(ctx: Context) -> bool:
    """Has the d marker arrived?  (P_m's 'current symbol is d' test.)"""
    sym = ctx.input.current_symbol()
    if sym == DEADLINE:
        return True
    # The current symbol may be the usefulness value that follows a d.
    return any(s == DEADLINE for s, _t in ctx.input.arrived_history())


def deadline_acceptor(problem: Problem) -> WorkerMonitorAcceptor:
    """The Section 4.1 acceptor for L(Π)."""

    def worker(ctx: Context, signals: Store) -> Generator[Event, Any, None]:
        # All of [min_acc] o ι is available at time 0 (HIGH priority
        # delivery beats this process's first resume at NORMAL).
        try:
            header = decode_prefix(ctx.input.poll())
        except ValueError:
            # Not a Section 4.1 word at all: reject it (a real-time
            # algorithm must decide every input, not crash on strangers).
            yield signals.put(WorkerSignal("malformed"))
            return
        ctx.storage["header"] = header
        # Simulate P_w's computation on ι.
        duration = problem.duration(header.input_word)
        if duration > 0:
            yield ctx.timeout(duration)
        solutions = problem.solutions(header.input_word)
        # Nondeterministic choice resolved the paper's way: pick the
        # solution matching the proposed one when it exists.
        computed: Optional[Tuple] = (
            header.proposed_output if header.proposed_output in solutions
            else (min(solutions) if solutions else None)
        )
        ctx.storage["solution"] = computed
        yield signals.put(WorkerSignal("done", payload=(header, computed)))

    def monitor_decision(ctx: Context, sig: WorkerSignal) -> Optional[Verdict]:
        if sig.kind == "malformed":
            return Verdict.REJECT
        if sig.kind != "done":
            return None
        header, computed = sig.payload
        matches = computed == header.proposed_output and computed is not None
        if not _deadline_passed(ctx):
            return Verdict.ACCEPT if matches else Verdict.REJECT
        # Deadline passed: check the usefulness measure first.
        assert header.min_acceptable is not None, "d arrived on a no-deadline word"
        usefulness = _current_usefulness(ctx)
        if usefulness < header.min_acceptable:
            return Verdict.REJECT
        return Verdict.ACCEPT if matches else Verdict.REJECT

    return WorkerMonitorAcceptor(worker, monitor_decision, name=f"L({problem.name})")


def _acceptor_for(problem: Problem) -> WorkerMonitorAcceptor:
    """The (cached) Section 4.1 acceptor for one problem."""
    return engine.cached_acceptor(
        ("deadlines", id(problem)),
        lambda: deadline_acceptor(problem),
        problem,
    )


@_obs.spanned(
    "deadlines.decide_instance",
    args=lambda instance, horizon=50_000: {
        "problem": instance.problem.name,
        "horizon": horizon,
    },
)
def decide_instance(instance: DeadlineInstance, horizon: int = 50_000):
    """Encode an instance, judge it through the engine, and return the
    report (lasso-exact: the acceptor always reaches s_f or s_r)."""
    word = encode_instance(instance)
    return engine.decide(_acceptor_for(instance.problem), word, horizon=horizon)


def language_of(problem: Problem, rng_instances=None) -> PredicateLanguage:
    """L(Π) as a :class:`PredicateLanguage` via the instance oracle.

    Membership is evaluated on encoded instances only (the words the
    Section 4.1 construction defines); the optional ``rng_instances``
    callable makes the language sampleable.
    """

    def predicate(word: TimedWord) -> bool:
        # Round-trip through the acceptor: the acceptor *is* the
        # membership procedure for encoded words.
        report = engine.decide(_acceptor_for(problem), word, horizon=50_000)
        return report.accepted

    sampler = None
    if rng_instances is not None:

        def sampler(rng: random.Random) -> TimedWord:
            return encode_instance(rng_instances(rng))

    return PredicateLanguage(predicate, name=f"L({problem.name})", sampler=sampler)


# ----------------------------------------------------------------------
# a concrete Π for examples, tests, and benchmarks
# ----------------------------------------------------------------------

def sorting_problem(time_per_item: int = 1, overhead: int = 0) -> Problem:
    """Π = "sort the input word" with a linear work model.

    The unique solution is the sorted input; ``duration`` is
    ``overhead + time_per_item · n``, giving benchmarks a knob that
    sweeps completion time across the deadline.
    """

    def solutions(inp: Tuple) -> set:
        return {tuple(sorted(inp))}

    def duration(inp: Tuple) -> int:
        return overhead + time_per_item * len(inp)

    return Problem(name="sort", solutions=solutions, duration=duration)
