"""repro.obs — the unified observability layer.

Every subsystem in this reproduction is ultimately a *measurement*
machine: acceptors count ``f`` symbols, the RTDB acceptors time query
service, the routing layer counts the paper's ``f+g`` overhead.  This
package is the substrate those measurements (and the benchmark
harness's perf trajectory) report through:

:mod:`repro.obs.registry`
    Named :class:`Counter` / :class:`Gauge` / :class:`Histogram`
    metrics with labeled children; deterministic snapshots.
:mod:`repro.obs.spans`
    Nestable wall-clock timing spans with a thread-local context.
:mod:`repro.obs.export`
    Chrome ``trace_event`` JSON (loads in ``chrome://tracing`` and
    Perfetto) and text/JSON metrics dumps.
:mod:`repro.obs.hooks`
    The pluggable instrumentation slot the kernel, machine, RTDB, and
    ad hoc layers call through — opt-in, and a single attribute check
    when disabled.

Quick start::

    from repro.obs import Instrumentation, instrumented, write_chrome_trace

    with instrumented() as inst:
        ...  # any repro workload: simulators, acceptors, scenarios
    write_chrome_trace("out.json", inst.spans, inst.registry)
    print(render_metrics_text(inst.registry))

See ``docs/observability.md`` for the metric inventory and a worked
example.
"""

from .export import (  # noqa: F401
    chrome_trace,
    metrics_dict,
    render_metrics_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from .hooks import (  # noqa: F401
    Instrumentation,
    current,
    install,
    instrumented,
    spanned,
    uninstall,
)
from .registry import (  # noqa: F401
    Counter,
    DeltaDumper,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
)
from .spans import Span, SpanRecorder  # noqa: F401

__all__ = [
    "Counter",
    "DeltaDumper",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricRegistry",
    "Span",
    "SpanRecorder",
    "Instrumentation",
    "install",
    "uninstall",
    "current",
    "instrumented",
    "spanned",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_dict",
    "render_metrics_text",
    "write_metrics",
]
