"""Named metrics: counters, gauges, histograms, and their registry.

The metric model is deliberately Prometheus-shaped (the idiom every
production python service already speaks) but zero-dependency and
deterministic:

* a :class:`Counter` only goes up (events dispatched, frames sent, f
  symbols written);
* a :class:`Gauge` is a sampled level (pending events, storage cells in
  use);
* a :class:`Histogram` keeps the raw observations so exact quantiles
  are available — simulation-scale cardinalities make reservoirs
  unnecessary, and exactness keeps the benchmark reports reproducible.

Each metric may carry *labeled children* (``counter.labels(kind="data")``)
so one logical series fans out by protocol, verdict, event kind, etc.
:meth:`MetricRegistry.collect` renders everything as a deterministic,
sorted list of plain-dict samples — the single source for both the text
dump and the JSON export in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import re
from bisect import insort
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry", "MetricError"]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

#: Quantiles reported by default in histogram snapshots.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

LabelKey = Tuple[Tuple[str, str], ...]


class MetricError(ValueError):
    """Bad metric name, kind collision, or invalid operation."""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common base: name, help text, and labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_values: LabelKey = labels
        self._children: Dict[LabelKey, "Metric"] = {}

    def labels(self, **labels: Any) -> "Metric":
        """The child metric for this label combination (created lazily)."""
        if not labels:
            return self
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help, labels=self.label_values + key)
            self._children[key] = child
        return child

    def children(self) -> Iterable["Metric"]:
        for key in sorted(self._children):
            yield self._children[key]

    def sample(self) -> Dict[str, Any]:
        """One plain-dict sample for this metric (no children)."""
        raise NotImplementedError

    def _base_sample(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.label_values),
        }

    def __repr__(self) -> str:  # pragma: no cover
        lbl = "".join(f" {k}={v}" for k, v in self.label_values)
        return f"<{self.kind} {self.name}{lbl}>"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def sample(self) -> Dict[str, Any]:
        return {**self._base_sample(), "value": self.value}


class Gauge(Metric):
    """A value that can go up and down; remembers its peak."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self.value: float = 0
        self.peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def sample(self) -> Dict[str, Any]:
        return {**self._base_sample(), "value": self.value, "peak": self.peak}


class Histogram(Metric):
    """Exact-quantile histogram over all observations.

    Observations are kept in sorted order (insertion is O(n) per
    observe, fine at simulation scale) so ``quantile`` is exact and the
    snapshot is independent of observation order — determinism the
    regression harness relies on.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self._sorted: List[float] = []
        self.count = 0
        self.sum: float = 0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self.count += 1
        self.sum += value

    @property
    def min(self) -> Optional[float]:
        return self._sorted[0] if self._sorted else None

    @property
    def max(self) -> Optional[float]:
        return self._sorted[-1] if self._sorted else None

    def quantile(self, q: float) -> Optional[float]:
        """Exact q-quantile (linear interpolation between order stats)."""
        if not 0 <= q <= 1:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if not self._sorted:
            return None
        pos = q * (len(self._sorted) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(self._sorted) - 1)
        frac = pos - lo
        return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    def sample(self) -> Dict[str, Any]:
        return {
            **self._base_sample(),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "quantiles": {str(q): self.quantile(q) for q in DEFAULT_QUANTILES},
        }


class MetricRegistry:
    """Creates, deduplicates, and snapshots named metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same object, and requesting an
    existing name as a different kind raises :class:`MetricError` (the
    classic silent-shadowing bug in hand-rolled metrics dicts).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested as {cls.kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> List[Dict[str, Any]]:
        """All samples (parents then labeled children), name-sorted."""
        out: List[Dict[str, Any]] = []
        for name in self.names():
            metric = self._metrics[name]
            has_children = False
            for child in metric.children():
                out.append(child.sample())
                has_children = True
            if not has_children:
                out.append(metric.sample())
        return out

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
