"""Named metrics: counters, gauges, histograms, and their registry.

The metric model is deliberately Prometheus-shaped (the idiom every
production python service already speaks) but zero-dependency and
deterministic:

* a :class:`Counter` only goes up (events dispatched, frames sent, f
  symbols written);
* a :class:`Gauge` is a sampled level (pending events, storage cells in
  use);
* a :class:`Histogram` keeps the raw observations so exact quantiles
  are available — simulation-scale cardinalities make reservoirs
  unnecessary, and exactness keeps the benchmark reports reproducible.

Each metric may carry *labeled children* (``counter.labels(kind="data")``)
so one logical series fans out by protocol, verdict, event kind, etc.
:meth:`MetricRegistry.collect` renders everything as a deterministic,
sorted list of plain-dict samples — the single source for both the text
dump and the JSON export in :mod:`repro.obs.export`.

Cross-process merging: metrics recorded inside a forked worker live in
*that process's* registry and would vanish with it.
:meth:`MetricRegistry.dump` serializes a registry's raw state (counter
values, gauge value+peak, every histogram observation) as plain data a
pipe can carry, and :meth:`MetricRegistry.merge` folds such a dump into
another registry — counters add, gauge peaks take the max, histogram
observations extend — so a parent can absorb its children's metrics
exactly.  :class:`DeltaDumper` wraps ``dump`` for long-lived workers
that report repeatedly: each call returns only what changed since the
last one, so repeated merges never double-count.  The engine's process
pools and the shard runtime (:mod:`repro.shard`) both ship these dumps
back over their result pipes.
"""

from __future__ import annotations

import re
from bisect import insort
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricError",
    "DeltaDumper",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")

#: Quantiles reported by default in histogram snapshots.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

LabelKey = Tuple[Tuple[str, str], ...]


class MetricError(ValueError):
    """Bad metric name, kind collision, or invalid operation."""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common base: name, help text, and labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_values: LabelKey = labels
        self._children: Dict[LabelKey, "Metric"] = {}

    def labels(self, **labels: Any) -> "Metric":
        """The child metric for this label combination (created lazily)."""
        if not labels:
            return self
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help, labels=self.label_values + key)
            self._children[key] = child
        return child

    def children(self) -> Iterable["Metric"]:
        for key in sorted(self._children):
            yield self._children[key]

    def sample(self) -> Dict[str, Any]:
        """One plain-dict sample for this metric (no children)."""
        raise NotImplementedError

    def _base_sample(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.label_values),
        }

    def __repr__(self) -> str:  # pragma: no cover
        lbl = "".join(f" {k}={v}" for k, v in self.label_values)
        return f"<{self.kind} {self.name}{lbl}>"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def sample(self) -> Dict[str, Any]:
        return {**self._base_sample(), "value": self.value}


class Gauge(Metric):
    """A value that can go up and down; remembers its peak."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self.value: float = 0
        self.peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def sample(self) -> Dict[str, Any]:
        return {**self._base_sample(), "value": self.value, "peak": self.peak}


class Histogram(Metric):
    """Exact-quantile histogram over all observations.

    Observations are kept in sorted order (insertion is O(n) per
    observe, fine at simulation scale) so ``quantile`` is exact and the
    snapshot is independent of observation order — determinism the
    regression harness relies on.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        super().__init__(name, help, labels)
        self._sorted: List[float] = []
        self.count = 0
        self.sum: float = 0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self.count += 1
        self.sum += value

    @property
    def observations(self) -> List[float]:
        """Every recorded observation, sorted (the raw merge payload)."""
        return list(self._sorted)

    @property
    def min(self) -> Optional[float]:
        return self._sorted[0] if self._sorted else None

    @property
    def max(self) -> Optional[float]:
        return self._sorted[-1] if self._sorted else None

    def quantile(self, q: float) -> Optional[float]:
        """Exact q-quantile (linear interpolation between order stats)."""
        if not 0 <= q <= 1:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if not self._sorted:
            return None
        pos = q * (len(self._sorted) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(self._sorted) - 1)
        frac = pos - lo
        return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    def sample(self) -> Dict[str, Any]:
        return {
            **self._base_sample(),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "quantiles": {str(q): self.quantile(q) for q in DEFAULT_QUANTILES},
        }


class MetricRegistry:
    """Creates, deduplicates, and snapshots named metrics.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same object, and requesting an
    existing name as a different kind raises :class:`MetricError` (the
    classic silent-shadowing bug in hand-rolled metrics dicts).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested as {cls.kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> List[Dict[str, Any]]:
        """All samples (parents then labeled children), name-sorted."""
        out: List[Dict[str, Any]] = []
        for name in self.names():
            metric = self._metrics[name]
            has_children = False
            for child in metric.children():
                out.append(child.sample())
                has_children = True
            if not has_children:
                out.append(metric.sample())
        return out

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- cross-process merging --------------------------------------------
    def dump(self) -> List[Dict[str, Any]]:
        """The registry's raw state as plain data (pipe-transportable).

        One entry per metric *leaf* (parents with labeled children dump
        only the children, mirroring :meth:`collect`): counters carry
        their value, gauges value and peak, histograms the full
        observation list — everything :meth:`merge` needs to fold this
        registry into another one losslessly.
        """
        out: List[Dict[str, Any]] = []

        def entry(metric: Metric) -> Dict[str, Any]:
            e: Dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.label_values),
            }
            if isinstance(metric, Counter):
                e["value"] = metric.value
            elif isinstance(metric, Gauge):
                e["value"] = metric.value
                e["peak"] = metric.peak
            elif isinstance(metric, Histogram):
                e["observations"] = metric.observations
            return e

        for name in self.names():
            metric = self._metrics[name]
            children = list(metric.children())
            for leaf in children or [metric]:
                out.append(entry(leaf))
        return out

    def merge(self, entries: Iterable[Dict[str, Any]]) -> None:
        """Fold a :meth:`dump` (typically from a child process) in.

        Counters add, gauges take the dumped value and the max peak,
        histograms replay the dumped observations.  Merging the same
        dump twice double-counts — long-lived reporters should dump
        deltas (:class:`DeltaDumper`).
        """
        for e in entries:
            kind = e["kind"]
            labels = e.get("labels") or {}
            if kind == "counter":
                if e["value"]:
                    self.counter(e["name"]).labels(**labels).inc(e["value"])  # type: ignore[attr-defined]
            elif kind == "gauge":
                g = self.gauge(e["name"]).labels(**labels)
                g.set(e["value"])  # type: ignore[attr-defined]
                g.peak = max(g.peak, e.get("peak", e["value"]))  # type: ignore[attr-defined]
            elif kind == "histogram":
                hist = self.histogram(e["name"]).labels(**labels)
                for value in e.get("observations", ()):
                    hist.observe(value)  # type: ignore[attr-defined]
            else:
                raise MetricError(f"cannot merge metric kind {kind!r}")


class DeltaDumper:
    """Incremental :meth:`MetricRegistry.dump` for long-lived reporters.

    A worker that ships its metrics more than once (the shard runtime
    reports on every sync and again at shutdown) must not re-send what
    the parent already merged.  Each :meth:`delta` call returns only
    the growth since the previous call: counter deltas, histogram
    observations added since the last cut, and gauges as-is (their
    merge is idempotent up to last-write-wins on the value).
    """

    def __init__(self, registry: MetricRegistry):
        self.registry = registry
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._hist_prev: Dict[Tuple[str, LabelKey], List[float]] = {}

    @staticmethod
    def _new_observations(prev: List[float], cur: List[float]) -> List[float]:
        """Multiset difference of two sorted lists (cur ⊇ prev)."""
        out: List[float] = []
        i = 0
        for value in cur:
            if i < len(prev) and prev[i] == value:
                i += 1
            else:
                out.append(value)
        return out

    def delta(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for e in self.registry.dump():
            key = (e["name"], _label_key(e["labels"]))
            if e["kind"] == "counter":
                prev = self._counters.get(key, 0)
                self._counters[key] = e["value"]
                e = dict(e, value=e["value"] - prev)
                if e["value"] == 0:
                    continue
            elif e["kind"] == "histogram":
                obs = e["observations"]
                fresh = self._new_observations(self._hist_prev.get(key, []), obs)
                self._hist_prev[key] = obs
                if not fresh:
                    continue
                e = dict(e, observations=fresh)
            out.append(e)
        return out
