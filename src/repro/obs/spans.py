"""Nestable wall-clock timing spans with a thread-local context stack.

A *span* brackets one unit of work (a ``Simulator.run``, one acceptor
decision, one routed scenario).  Spans nest: entering a span inside
another records the parent relationship and depth, which is exactly the
structure Chrome's trace viewer draws as stacked bars (see
:mod:`repro.obs.export`).

The recorder is thread-safe in the only way that matters here: each
thread keeps its own open-span stack (``threading.local``), and
finished spans are appended under a lock with a first-seen thread
numbering, so a single-threaded run is bit-for-bit deterministic given
a deterministic clock.  Tests inject a fake clock for that; production
use defaults to :func:`time.perf_counter_ns`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanRecorder"]


@dataclass
class Span:
    """One completed (or still-open) timed region."""

    name: str
    start_ns: int
    seq: int                      # start order, globally unique
    tid: int                      # small per-recorder thread number
    depth: int                    # nesting depth within its thread, 0 = root
    parent_seq: Optional[int]     # seq of the enclosing span, if any
    args: Dict[str, Any] = field(default_factory=dict)
    end_ns: Optional[int] = None

    @property
    def duration_ns(self) -> Optional[int]:
        return None if self.end_ns is None else self.end_ns - self.start_ns


class SpanRecorder:
    """Collects spans; hand it to :func:`repro.obs.export.chrome_trace`.

    Parameters
    ----------
    clock:
        Nanosecond monotonic clock; override with a deterministic stub
        in tests.
    limit:
        Completed spans beyond this are counted in ``dropped`` instead
        of stored — the same memory guard the kernel ``Tracer`` uses.
    """

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        limit: int = 250_000,
    ):
        self.clock = clock
        self.limit = limit
        self.spans: List[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self._thread_ids: Dict[int, int] = {}

    # -- internals --------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._thread_ids:
                self._thread_ids[ident] = len(self._thread_ids)
            return self._thread_ids[ident]

    # -- recording --------------------------------------------------------
    def begin(self, name: str, **args: Any) -> Span:
        """Open a span; prefer the :meth:`span` context manager."""
        stack = self._stack()
        with self._lock:
            seq = self._seq
            self._seq += 1
        span = Span(
            name=name,
            start_ns=self.clock(),
            seq=seq,
            tid=self._tid(),
            depth=len(stack),
            parent_seq=stack[-1].seq if stack else None,
            args=dict(args),
        )
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (and anything erroneously left open above it)."""
        stack = self._stack()
        while stack:
            top = stack.pop()
            top.end_ns = self.clock()
            self._store(top)
            if top is span:
                break
        return span

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.limit:
                self.dropped += 1
                return
            self.spans.append(span)

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Span]:
        """``with recorder.span("kernel.run", until=100): ...``"""
        s = self.begin(name, **args)
        try:
            yield s
        finally:
            self.end(s)

    # -- queries ----------------------------------------------------------
    def completed(self) -> List[Span]:
        """Finished spans in deterministic start (seq) order."""
        return sorted(self.spans, key=lambda s: s.seq)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.completed() if s.name == name]

    def open_depth(self) -> int:
        """Current nesting depth on the calling thread."""
        return len(self._stack())

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)
