"""Exporters: Chrome ``trace_event`` JSON and metrics dumps.

Two consumers, two formats:

* :func:`chrome_trace` renders a :class:`~repro.obs.spans.SpanRecorder`
  as the Trace Event Format's *JSON object* flavour — a dict with a
  ``traceEvents`` list of complete (``"ph": "X"``) events — which loads
  directly in ``chrome://tracing`` and https://ui.perfetto.dev.
* :func:`metrics_dict` / :func:`render_metrics_text` snapshot a
  :class:`~repro.obs.registry.MetricRegistry` as JSON or a
  Prometheus-exposition-style text block for terminals and CI logs.

:func:`validate_chrome_trace` is the schema contract the tests
round-trip against; keep it in sync with what the viewers require
(name/ph/ts/pid/tid present, X events carry a duration).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from .registry import MetricRegistry
from .spans import SpanRecorder

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_dict",
    "render_metrics_text",
    "write_metrics",
]

#: Category tag stamped on every emitted trace event.
TRACE_CATEGORY = "repro"


def chrome_trace(
    spans: SpanRecorder,
    registry: Optional[MetricRegistry] = None,
    pid: int = 0,
) -> Dict[str, Any]:
    """The Trace Event Format JSON-object for ``spans``.

    Timestamps are microseconds (the format's unit), rebased to the
    earliest span so traces start near t=0 in the viewer.  A final
    metrics snapshot, if a registry is given, rides along in
    ``otherData`` (viewers ignore unknown keys; tooling can read it).
    """
    done = [s for s in spans.completed() if s.end_ns is not None]
    base_ns = min((s.start_ns for s in done), default=0)
    events: List[Dict[str, Any]] = []
    for s in done:
        events.append(
            {
                "name": s.name,
                "cat": TRACE_CATEGORY,
                "ph": "X",
                "ts": (s.start_ns - base_ns) / 1000.0,
                "dur": (s.end_ns - base_ns) / 1000.0 - (s.start_ns - base_ns) / 1000.0,
                "pid": pid,
                "tid": s.tid,
                "args": dict(s.args),
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "spans_dropped": spans.dropped},
    }
    if registry is not None:
        doc["otherData"]["metrics"] = metrics_dict(registry)
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key, types in (
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if not isinstance(ev.get(key), types):
                problems.append(f"event {i}: missing/invalid {key!r}")
        if ev.get("ph") == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event {i}: X event without numeric 'dur'")
        if isinstance(ev.get("ts"), (int, float)) and ev["ts"] < 0:
            problems.append(f"event {i}: negative timestamp")
    return problems


def write_chrome_trace(
    path: str,
    spans: SpanRecorder,
    registry: Optional[MetricRegistry] = None,
) -> Dict[str, Any]:
    """Write the trace JSON to ``path``; returns the document."""
    doc = chrome_trace(spans, registry)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


# ----------------------------------------------------------------------
# metrics dumps
# ----------------------------------------------------------------------

def metrics_dict(registry: MetricRegistry) -> Dict[str, Any]:
    """JSON-ready snapshot: ``{"metrics": [sample, ...]}``."""
    return {"metrics": registry.collect()}


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_metrics_text(registry: MetricRegistry) -> str:
    """Prometheus-exposition-style text block for terminals/CI logs."""
    lines: List[str] = []
    for sample in registry.collect():
        series = sample["name"] + _format_labels(sample["labels"])
        if sample["type"] == "histogram":
            lines.append(f"{series}_count {sample['count']}")
            lines.append(f"{series}_sum {sample['sum']}")
            for q, v in sample["quantiles"].items():
                lines.append(f"{series}_q{q} {v}")
        else:
            lines.append(f"{series} {sample['value']}")
            if sample["type"] == "gauge":
                lines.append(f"{series}_peak {sample['peak']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    path: str,
    registry: MetricRegistry,
    fmt: str = "json",
) -> Union[Dict[str, Any], str]:
    """Write a metrics dump as ``fmt`` = ``"json"`` or ``"text"``."""
    if fmt == "json":
        doc = metrics_dict(registry)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return doc
    if fmt == "text":
        text = render_metrics_text(registry)
        with open(path, "w") as fh:
            fh.write(text)
        return text
    raise ValueError(f"unknown metrics format {fmt!r} (use 'json' or 'text')")
