"""The pluggable instrumentation API the subsystems call through.

Attachment model
----------------
One process-wide slot, :data:`HOOKS`.  Instrumented call sites in the
kernel, machine, RTDB, and ad hoc layers all follow the same fast-path
discipline the kernel's ``Tracer`` established::

    from repro.obs import hooks as _obs
    ...
    h = _obs.HOOKS
    if h is not None:          # single attribute check when disabled
        h.kernel_event(ok)

With nothing installed the cost is one module-attribute read and a
``None`` test — uninstrumented runs pay ~nothing, and (crucially) the
hooks never influence scheduling, so an instrumented run dispatches the
exact same event sequence as a bare one (regression-tested in
``tests/test_obs_hooks.py``).

Install with :func:`install` / :func:`uninstall`, or lexically with the
:func:`instrumented` context manager (save/restore semantics, so it
nests).  An :class:`Instrumentation` bundles one
:class:`~repro.obs.registry.MetricRegistry` and one
:class:`~repro.obs.spans.SpanRecorder`; hot-path counters are pre-bound
at construction so per-event work is one ``inc``.

The metric inventory each subsystem exposes is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, ContextManager, Iterator, Mapping, Optional

from .registry import MetricRegistry
from .spans import SpanRecorder

__all__ = [
    "Instrumentation",
    "HOOKS",
    "install",
    "uninstall",
    "current",
    "instrumented",
    "spanned",
]

#: The installed instrumentation, or None.  Call sites read this
#: directly (module attribute) — that read is the entire disabled cost.
HOOKS: Optional["Instrumentation"] = None


class Instrumentation:
    """One registry + one span recorder + the subsystem callbacks."""

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self.spans = spans if spans is not None else SpanRecorder()
        r = self.registry
        # Pre-bound hot-path metrics (one dict lookup saved per event).
        self._k_dispatched = r.counter(
            "kernel.events_dispatched", "events popped by Simulator.step"
        )
        self._k_failed = r.counter(
            "kernel.events_failed", "dispatched events carrying a failure"
        )
        self._k_scheduled = r.counter(
            "kernel.events_scheduled", "events pushed onto the event list"
        )
        self._k_processes = r.counter(
            "kernel.processes_started", "generator processes registered"
        )
        self._k_trace_records = r.counter(
            "kernel.trace_records", "TraceRecords captured by Tracer"
        )
        self._k_pending = r.gauge(
            "kernel.pending_events", "event-list size sampled after each run"
        )

    # -- generic API ------------------------------------------------------
    def count(self, name: str, n: float = 1, **labels: Any) -> None:
        self.registry.counter(name).labels(**labels).inc(n)  # type: ignore[attr-defined]

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.registry.gauge(name).labels(**labels).set(value)  # type: ignore[attr-defined]

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.registry.histogram(name).labels(**labels).observe(value)  # type: ignore[attr-defined]

    def span(self, name: str, **args: Any) -> ContextManager:
        return self.spans.span(name, **args)

    # -- kernel fast path -------------------------------------------------
    def kernel_event(self, ok: bool) -> None:
        self._k_dispatched.inc()
        if not ok:
            self._k_failed.inc()

    def kernel_scheduled(self) -> None:
        self._k_scheduled.inc()

    def kernel_process_started(self) -> None:
        self._k_processes.inc()

    def kernel_trace_record(self) -> None:
        self._k_trace_records.inc()

    def kernel_run_done(self, pending: int) -> None:
        self._k_pending.set(pending)


def install(inst: Optional[Instrumentation] = None) -> Instrumentation:
    """Install ``inst`` (or a fresh one) as the process-wide hooks."""
    global HOOKS
    if inst is None:
        inst = Instrumentation()
    HOOKS = inst
    return inst


def uninstall() -> Optional[Instrumentation]:
    """Remove the installed hooks; returns what was installed."""
    global HOOKS
    prev, HOOKS = HOOKS, None
    return prev


def current() -> Optional[Instrumentation]:
    """The installed instrumentation, if any."""
    return HOOKS


def spanned(
    name: str,
    args: Optional[Callable[..., Mapping[str, Any]]] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator form of the span fast path.

    Replaces the hand-rolled call-site boilerplate::

        h = _obs.HOOKS
        if h is not None:
            with h.span("machine.decide", algorithm=self.name, ...):
                return self._decide(word, horizon)
        return self._decide(word, horizon)

    with::

        @spanned("machine.decide",
                 args=lambda self, word, horizon=10_000:
                     {"algorithm": self.name, "horizon": horizon})
        def decide(self, word, horizon=10_000): ...

    ``args`` (optional) receives the wrapped call's arguments verbatim
    and returns the span's args mapping; it is only evaluated when
    hooks are installed, so the disabled cost stays one attribute read
    and a ``None`` test.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*call_args: Any, **call_kwargs: Any) -> Any:
            h = HOOKS
            if h is None:
                return fn(*call_args, **call_kwargs)
            span_args = dict(args(*call_args, **call_kwargs)) if args else {}
            with h.span(name, **span_args):
                return fn(*call_args, **call_kwargs)

        return wrapper

    return decorate


@contextmanager
def instrumented(inst: Optional[Instrumentation] = None) -> Iterator[Instrumentation]:
    """Install hooks for a lexical scope, restoring the previous ones."""
    global HOOKS
    prev = HOOKS
    active = install(inst)
    try:
        yield active
    finally:
        HOOKS = prev
