"""Fault-tolerant decision fan-out: the crash-recovering pool path.

:func:`repro.engine.batch.decide_many` assumes a well-behaved pool: a
SIGKILLed worker hangs the whole sweep, an exception aborts it, and a
slow word holds every verdict hostage.  Production fan-out needs the
failure model real-time parallel computation treats as first-class:
processors die, and recovery itself has a timing budget.  This module
is that layer, built on the same tokened chunk protocol as the plain
pool (same :func:`~repro.engine.batch._run_chunk`, same fork
inheritance of unpicklable acceptors) but with one forked process per
chunk and an explicit result pipe, so the parent *sees* every failure:

* **worker death** — the child's pipe closes with nothing on it
  (SIGKILL, OOM, segfault).  The chunk is retried with capped
  exponential backoff, optionally split in half first so a single
  poison word is isolated in O(log chunk) retries;
* **worker exception** — the child reports the error before exiting;
  same retry path, with the reason preserved;
* **deadline budget** — ``deadline_s`` bounds the whole batch in
  wall-clock seconds.  On expiry every still-missing word gets an
  explicit :data:`~repro.engine.verdict.Verdict.UNDECIDED` report
  (the engine's inconclusive verdict) marked
  ``evidence["degraded"] = "deadline"`` — partial results, never a
  hang;
* **graceful degradation** — a chunk that exhausts its retries falls
  back to the parent's serial loop under the same strategy (reports
  stay bit-identical to the serial path and carry *no* marker), then
  optionally to a cheaper strategy (``fallback_strategy``, typically
  ``"long-prefix-empirical"``), whose reports are explicitly marked
  ``evidence["degraded"] = "strategy-fallback:<name>"``.

The invariant the fault suite pins: **every unmarked report is
bit-identical to what the serial path would have produced** — retries
and serial fallback re-run the pure per-word function, so fault
recovery is invisible in the verdict stream; only *marked* reports may
differ, and the marker says why.

Observability: ``engine.retries{reason}``, ``engine.degraded{mode}``,
``engine.deadline_misses``, and the ``engine.decide_many_resilient``
span.  Fault wrappers for tests/benchmarks live in
:mod:`repro.engine.faults`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..obs import hooks as _obs
from .batch import BACKENDS, _decide_one, _register_job, _release_job, _run_chunk
from .strategies import DEFAULT_HORIZON, DecisionStrategy, get_strategy
from .verdict import DecisionReport, Verdict

__all__ = [
    "RetryPolicy",
    "DegradePolicy",
    "BatchOutcome",
    "decide_many_resilient",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How failed chunks are retried.

    ``backoff_base * 2**attempt`` seconds between attempts, capped at
    ``backoff_cap``; ``split_chunks`` halves a failed multi-word chunk
    before requeueing so a poison word is cornered in O(log n) retries.
    """

    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    split_chunks: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class DegradePolicy:
    """What happens after retries are exhausted.

    ``serial_fallback`` re-judges the chunk in the parent under the
    *same* strategy (bit-identical, unmarked); ``fallback_strategy``
    names a cheaper strategy tried next (marked in evidence).  With
    both disabled, abandoned words get UNDECIDED reports marked
    ``degraded="abandoned"``.
    """

    serial_fallback: bool = True
    fallback_strategy: Optional[str] = None


@dataclass
class BatchOutcome:
    """One resilient batch: the reports plus the recovery ledger."""

    reports: List[DecisionReport]
    mode: str = "serial"
    retries: int = 0
    worker_deaths: int = 0
    serial_fallbacks: int = 0
    degraded_indices: List[int] = field(default_factory=list)
    deadline_missed: bool = False
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True iff every report is the undegraded serial-identical one."""
        return not self.degraded_indices and not self.deadline_missed


class _Chunk:
    __slots__ = ("lo", "hi", "attempt", "not_before")

    def __init__(self, lo: int, hi: int, attempt: int = 0, not_before: float = 0.0):
        self.lo = lo
        self.hi = hi
        self.attempt = attempt
        self.not_before = not_before

    def indices(self) -> range:
        return range(self.lo, self.hi)


def _chunk_child(conn: Any, token: int, lo: int, hi: int) -> None:
    """Forked child: judge one chunk, ship the reports (or the error).

    When the parent had hooks installed at fork time, the chunk runs
    under fresh child instrumentation and the registry dump rides back
    with the reports — metrics recorded in the child would otherwise
    die with it (see :func:`repro.engine.batch._run_chunk_metered`).
    """
    try:
        if _obs.HOOKS is None:
            conn.send(("ok", _run_chunk((token, lo, hi)), None))
        else:
            with _obs.instrumented() as inst:
                reports = _run_chunk((token, lo, hi))
            conn.send(("ok", reports, inst.registry.dump()))
    except BaseException as exc:  # noqa: BLE001 — report anything, then die
        try:
            conn.send(("err", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


def _inconclusive(
    index: int, seed: int, strat_name: str, reason: str, detail: Optional[str] = None
) -> DecisionReport:
    """The explicit INCONCLUSIVE remainder report (UNDECIDED + marker)."""
    evidence = {"seed": seed + index, "index": index, "degraded": reason}
    if detail is not None:
        evidence["error"] = detail
    return DecisionReport(
        verdict=Verdict.UNDECIDED, horizon=0, evidence=evidence, strategy=strat_name
    )


def decide_many_resilient(
    acceptor: Any,
    words: Sequence[Any],
    *,
    horizon: int = DEFAULT_HORIZON,
    strategy: Union[str, DecisionStrategy] = "lasso-exact",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    seed: int = 0,
    retry: Optional[RetryPolicy] = None,
    degrade: Optional[DegradePolicy] = None,
    deadline_s: Optional[float] = None,
    backend: str = "auto",
) -> BatchOutcome:
    """Judge every word, surviving worker faults within a time budget.

    Same contract as :func:`~repro.engine.batch.decide_many` — one
    report per word, in word order, unmarked reports bit-identical to
    the serial path — plus the failure model described in the module
    docstring.  Returns a :class:`BatchOutcome` carrying the reports
    and the recovery ledger.

    ``backend`` picks the fan-out like ``decide_many``'s: ``"fork"``
    (one forked process per chunk; also what ``"auto"`` chooses for
    ``workers > 1``) or ``"shards"`` (the persistent pool of
    :mod:`repro.shard` — worker deaths are healed by respawn and the
    same retry/degrade ladder applies; needs a picklable acceptor and
    falls back to fork with the reason recorded otherwise).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(
            f"chunk_size must be >= 1 or None for automatic sizing, got {chunk_size}"
        )
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    retry = retry if retry is not None else RetryPolicy()
    degrade = degrade if degrade is not None else DegradePolicy()
    words = list(words)
    strat = get_strategy(strategy)
    n = len(words)
    # Raw TBAs are accepted like decide_many's: shipped as-is to shard
    # workers, judged locally through the cached compilation.
    from ..automata.timed import TimedBuchiAutomaton
    from .batch import compiled_tba

    shippable = acceptor
    if isinstance(acceptor, TimedBuchiAutomaton):
        acceptor = compiled_tba(acceptor)
    fork_ok = (
        workers > 1
        and n > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    h = _obs.HOOKS

    def fallback(reason: str, to: str) -> str:
        if h is not None:
            h.count("engine.backend_fallbacks", reason=reason)
        return to

    if backend == "serial" or workers <= 1 or n <= 1:
        mode = "serial"
    elif not fork_ok:
        mode = fallback("fork-unavailable", "serial")
    elif backend == "shards":
        mode = "shards"
    else:  # "auto" and "fork" both take the fork path (the ladder's
        # per-chunk process isolation is the battle-tested default)
        mode = "fork"
    lang_spec = strat_spec_ = None
    if mode == "shards":
        from ..shard import pool as _shard_pool

        try:
            lang_spec = _shard_pool.language_spec(shippable)
            strat_spec_ = _shard_pool.strategy_spec(strat)
        except _shard_pool.LanguageUnshippable as exc:
            mode = fallback(exc.reason, "fork")
    mode_label = {"serial": "serial", "fork": "pool", "shards": "shards"}[mode]
    if h is not None:
        h.count("engine.batches", mode=mode_label)
        h.count("engine.batch_words", n)

    start = time.perf_counter()
    deadline_at = None if deadline_s is None else start + deadline_s
    outcome = BatchOutcome(reports=[], mode=mode_label)

    def run() -> None:
        slots: List[Optional[DecisionReport]] = [None] * n
        if mode == "shards":
            _run_pooled_shards(
                slots, acceptor, words, horizon, strat, seed, workers,
                chunk_size, retry, degrade, deadline_at, outcome,
                lang_spec, strat_spec_,
            )
        elif mode == "fork":
            _run_pooled(
                slots, acceptor, words, horizon, strat, seed, workers,
                chunk_size, retry, degrade, deadline_at, outcome,
            )
        else:
            _run_serial(
                slots, acceptor, words, horizon, strat, seed,
                retry, degrade, deadline_at, outcome,
            )
        for i in range(n):
            if slots[i] is None:
                slots[i] = _inconclusive(i, seed, strat.name, "deadline")
                outcome.degraded_indices.append(i)
        outcome.degraded_indices.sort()
        outcome.reports = slots  # type: ignore[assignment]
        if outcome.deadline_missed and h is not None:
            h.count("engine.deadline_misses")

    if h is None:
        run()
    else:
        with h.span(
            "engine.decide_many_resilient",
            words=n,
            workers=1 if mode == "serial" else workers,
            strategy=strat.name,
            horizon=horizon,
            deadline_s=deadline_s if deadline_s is not None else 0,
            backend=mode,
        ):
            run()
    outcome.elapsed_s = time.perf_counter() - start
    return outcome


# ----------------------------------------------------------------------
# degrade ladder (shared by both paths)
# ----------------------------------------------------------------------

def _degrade_index(
    slots: List[Optional[DecisionReport]],
    i: int,
    acceptor: Any,
    words: Sequence[Any],
    horizon: int,
    strat: DecisionStrategy,
    seed: int,
    degrade: DegradePolicy,
    outcome: BatchOutcome,
    *,
    try_serial: bool,
    detail: Optional[str],
    deadline_at: Optional[float],
) -> None:
    """Last-resort judgement of one word after retries are exhausted."""
    h = _obs.HOOKS
    if deadline_at is not None and time.perf_counter() >= deadline_at:
        outcome.deadline_missed = True
        slots[i] = _inconclusive(i, seed, strat.name, "deadline", detail)
        outcome.degraded_indices.append(i)
        return
    if try_serial:
        try:
            slots[i] = _decide_one(acceptor, words[i], horizon, strat, seed, i)
            outcome.serial_fallbacks += 1
            if h is not None:
                h.count("engine.degraded", mode="serial-fallback")
            return
        except Exception as exc:
            detail = repr(exc)
    if degrade.fallback_strategy is not None:
        cheap = get_strategy(degrade.fallback_strategy)
        try:
            report = _decide_one(acceptor, words[i], horizon, cheap, seed, i)
            report.evidence["degraded"] = f"strategy-fallback:{cheap.name}"
            slots[i] = report
            outcome.degraded_indices.append(i)
            if h is not None:
                h.count("engine.degraded", mode="strategy-fallback")
            return
        except Exception as exc:
            detail = repr(exc)
    slots[i] = _inconclusive(i, seed, strat.name, "abandoned", detail)
    outcome.degraded_indices.append(i)
    if h is not None:
        h.count("engine.degraded", mode="abandoned")


# ----------------------------------------------------------------------
# serial path: retries + deadline without a pool
# ----------------------------------------------------------------------

def _run_serial(
    slots: List[Optional[DecisionReport]],
    acceptor: Any,
    words: Sequence[Any],
    horizon: int,
    strat: DecisionStrategy,
    seed: int,
    retry: RetryPolicy,
    degrade: DegradePolicy,
    deadline_at: Optional[float],
    outcome: BatchOutcome,
) -> None:
    h = _obs.HOOKS
    for i in range(len(words)):
        if deadline_at is not None and time.perf_counter() >= deadline_at:
            outcome.deadline_missed = True
            return
        attempt = 0
        while True:
            try:
                slots[i] = _decide_one(acceptor, words[i], horizon, strat, seed, i)
                break
            except Exception as exc:
                attempt += 1
                outcome.retries += 1
                if h is not None:
                    h.count("engine.retries", reason="exception")
                if attempt > retry.max_retries:
                    # serial judging just failed, so the ladder skips
                    # the (identical) serial-fallback rung
                    _degrade_index(
                        slots, i, acceptor, words, horizon, strat, seed,
                        degrade, outcome, try_serial=False,
                        detail=repr(exc), deadline_at=deadline_at,
                    )
                    break
                delay = retry.delay(attempt)
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.perf_counter()))
                time.sleep(delay)


# ----------------------------------------------------------------------
# pooled path: one forked process per chunk, explicit result pipes
# ----------------------------------------------------------------------

def _run_pooled(
    slots: List[Optional[DecisionReport]],
    acceptor: Any,
    words: Sequence[Any],
    horizon: int,
    strat: DecisionStrategy,
    seed: int,
    workers: int,
    chunk_size: Optional[int],
    retry: RetryPolicy,
    degrade: DegradePolicy,
    deadline_at: Optional[float],
    outcome: BatchOutcome,
) -> None:
    import math

    h = _obs.HOOKS
    n = len(words)
    size = chunk_size if chunk_size is not None else max(
        1, math.ceil(n / (workers * 4))
    )
    ctx = multiprocessing.get_context("fork")
    token = _register_job((acceptor, list(words), horizon, strat, seed))
    pending: List[_Chunk] = [
        _Chunk(lo, min(lo + size, n)) for lo in range(0, n, size)
    ]
    live: dict = {}  # parent_conn -> (process, chunk)

    def launch(chunk: _Chunk) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_chunk_child,
            args=(child_conn, token, chunk.lo, chunk.hi),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        live[parent_conn] = (proc, chunk)

    def fail(chunk: _Chunk, reason: str, detail: Optional[str]) -> None:
        attempt = chunk.attempt + 1
        if reason == "worker-death":
            outcome.worker_deaths += 1
        if attempt > retry.max_retries:
            for i in chunk.indices():
                if slots[i] is None:
                    _degrade_index(
                        slots, i, acceptor, words, horizon, strat, seed,
                        degrade, outcome, try_serial=degrade.serial_fallback,
                        detail=detail, deadline_at=deadline_at,
                    )
            return
        outcome.retries += 1
        if h is not None:
            h.count("engine.retries", reason=reason)
        not_before = time.perf_counter() + retry.delay(attempt)
        if retry.split_chunks and chunk.hi - chunk.lo > 1:
            mid = (chunk.lo + chunk.hi) // 2
            pending.append(_Chunk(chunk.lo, mid, attempt, not_before))
            pending.append(_Chunk(mid, chunk.hi, attempt, not_before))
        else:
            pending.append(_Chunk(chunk.lo, chunk.hi, attempt, not_before))

    def reap(conn: Any) -> None:
        proc, chunk = live.pop(conn)
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            msg = None
        conn.close()
        proc.join()
        if msg is not None and msg[0] == "ok":
            for report in msg[1]:
                slots[report.evidence["index"]] = report
            if len(msg) > 2 and msg[2] and h is not None:
                h.registry.merge(msg[2])
        elif msg is not None:
            fail(chunk, "exception", msg[1])
        else:
            fail(chunk, "worker-death", f"exitcode={proc.exitcode}")

    try:
        while pending or live:
            now = time.perf_counter()
            if deadline_at is not None and now >= deadline_at:
                outcome.deadline_missed = True
                for proc, _chunk in live.values():
                    proc.kill()
                    proc.join()
                for conn in list(live):
                    conn.close()
                live.clear()
                pending.clear()
                return
            eligible = [c for c in pending if c.not_before <= now]
            for chunk in eligible[: max(0, workers - len(live))]:
                pending.remove(chunk)
                launch(chunk)
            if live:
                timeout: Optional[float] = None
                waits = [c.not_before - now for c in pending if c.not_before > now]
                if waits:
                    timeout = max(0.0, min(waits))
                if deadline_at is not None:
                    remaining = max(0.0, deadline_at - now)
                    timeout = remaining if timeout is None else min(timeout, remaining)
                for conn in multiprocessing.connection.wait(
                    list(live), timeout=timeout
                ):
                    reap(conn)
            elif pending:
                target = min(c.not_before for c in pending)
                if deadline_at is not None:
                    target = min(target, deadline_at)
                time.sleep(max(0.0, target - time.perf_counter()))
    finally:
        _release_job(token)


# ----------------------------------------------------------------------
# shard-pool path: the same ladder over persistent workers
# ----------------------------------------------------------------------

def _run_pooled_shards(
    slots: List[Optional[DecisionReport]],
    acceptor: Any,
    words: Sequence[Any],
    horizon: int,
    strat: DecisionStrategy,
    seed: int,
    workers: int,
    chunk_size: Optional[int],
    retry: RetryPolicy,
    degrade: DegradePolicy,
    deadline_at: Optional[float],
    outcome: BatchOutcome,
    lang_spec: Any,
    strat_spec: Any,
) -> None:
    """Resilient fan-out over the persistent shard pool.

    Round-based: every backoff-eligible chunk goes to the pool at once,
    completed chunks fill their slots, and failures come back as
    explicit records that re-enter the same retry ladder as the fork
    path (capped backoff, optional chunk splitting, then the degrade
    ladder).  Worker deaths are healed *inside* the pool by respawn —
    the shard that died is back at strength before the retry fires —
    which is the per-shard analogue of the fork path's
    process-per-chunk isolation.
    """
    import math

    from ..shard import pool as shard_pool

    h = _obs.HOOKS
    n = len(words)
    router = shard_pool.shared_pool(workers)
    k = max(1, min(workers, router.n_shards))
    size = chunk_size if chunk_size is not None else max(
        1, math.ceil(n / (k * 4))
    )
    pending: List[_Chunk] = [
        _Chunk(lo, min(lo + size, n)) for lo in range(0, n, size)
    ]

    def fail(chunk: _Chunk, reason: str, detail: Optional[str]) -> None:
        attempt = chunk.attempt + 1
        if reason == "worker-death":
            outcome.worker_deaths += 1
        if attempt > retry.max_retries:
            for i in chunk.indices():
                if slots[i] is None:
                    _degrade_index(
                        slots, i, acceptor, words, horizon, strat, seed,
                        degrade, outcome, try_serial=degrade.serial_fallback,
                        detail=detail, deadline_at=deadline_at,
                    )
            return
        outcome.retries += 1
        if h is not None:
            h.count("engine.retries", reason=reason)
        not_before = time.perf_counter() + retry.delay(attempt)
        if retry.split_chunks and chunk.hi - chunk.lo > 1:
            mid = (chunk.lo + chunk.hi) // 2
            pending.append(_Chunk(chunk.lo, mid, attempt, not_before))
            pending.append(_Chunk(mid, chunk.hi, attempt, not_before))
        else:
            pending.append(_Chunk(chunk.lo, chunk.hi, attempt, not_before))

    while pending:
        now = time.perf_counter()
        if deadline_at is not None and now >= deadline_at:
            outcome.deadline_missed = True
            return
        eligible = [c for c in pending if c.not_before <= now]
        if not eligible:
            target = min(c.not_before for c in pending)
            if deadline_at is not None:
                target = min(target, deadline_at)
            time.sleep(max(0.0, target - time.perf_counter()))
            continue
        for chunk in eligible:
            pending.remove(chunk)
        by_range = {(c.lo, c.hi): c for c in eligible}
        results, failures = shard_pool.run_chunks(
            router, lang_spec, strat_spec, words, list(by_range),
            horizon=horizon, seed=seed, workers=workers,
            deadline_at=deadline_at, max_retries=0,
        )
        for i, report in results.items():
            slots[i] = report
        for lo, hi, reason, detail in failures:
            chunk = by_range[(lo, hi)]
            if reason == "deadline":
                # missing slots become explicit deadline markers upstream
                outcome.deadline_missed = True
                continue
            fail(
                chunk,
                "worker-death" if reason in ("worker-death", "no-workers") else "exception",
                detail,
            )
