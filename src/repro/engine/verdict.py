"""The unified decision vocabulary every domain reports in.

Before the engine existed, each application of the paper's model kept a
private verdict shape: the machine layer had its own ``DecisionReport``,
the RTDB acceptors re-used it with different conventions, and the ad hoc
routing validator returned an unrelated ``RouteValidation``.  This
module is the single vocabulary they all now share:

* :class:`Verdict` — the three-valued outcome of judging a run
  (Definition 3.4's accept/reject, plus UNDECIDED for horizon-bounded
  judgements that never reached an absorbing state);
* :class:`DecisionReport` — one record per judged input, carrying the
  verdict, the raw acceptance currency (``f_count``), the horizon the
  judgement is confident to, the chronon the absorbing verdict was
  declared at (if any), the rt-SPACE quantity (``space_peak``), and a
  free-form ``evidence`` mapping for strategy- or domain-specific
  artifacts (empirical f-rates, routing-chain violations, …).

The machine layer re-exports both names, so historical imports
(``from repro.machine import Verdict``) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["Verdict", "DecisionReport"]


class Verdict(Enum):
    """Outcome of judging a run."""

    ACCEPT = "accept"
    REJECT = "reject"
    UNDECIDED = "undecided"


@dataclass
class DecisionReport:
    """Result of judging one input word (any domain, any strategy).

    ``evidence`` is the extension point: decision strategies and domain
    adapters deposit their artifacts there (``discipline``, empirical
    ``raw_verdict``, routing ``violations``, batch ``seed``, …) instead
    of growing per-domain report classes.  ``strategy`` names the
    decision procedure that produced the report (empty for direct
    machine-level judgements).
    """

    verdict: Verdict
    f_count: int = 0
    horizon: int = 0
    space_peak: int = 0
    decided_at: Optional[int] = None
    evidence: Dict[str, Any] = field(default_factory=dict)
    strategy: str = ""

    @property
    def accepted(self) -> bool:
        return self.verdict is Verdict.ACCEPT

    def __repr__(self) -> str:  # pragma: no cover
        tag = f", strategy={self.strategy}" if self.strategy else ""
        return (
            f"DecisionReport({self.verdict.value}, f={self.f_count}, "
            f"horizon={self.horizon}, space={self.space_peak}, "
            f"at={self.decided_at}{tag})"
        )
