"""Pluggable decision procedures over Definition 3.4 acceptors.

The E14 ablation (``benchmarks/bench_def34_acceptance.py``) contrasts
two ways of judging "infinitely many f on the output tape"; before the
engine existed they were hard-wired per call site (``decide`` vs
``count_f``).  Here they are first-class strategies, selectable per
request:

* :class:`LassoExact` (``"lasso-exact"``) — the paper's own
  absorbing-verdict discipline: run until s_f/s_r is declared or the
  horizon passes.  Exact on the lasso words every Section 4/5
  construction produces, and O(decision point) regardless of horizon.
* :class:`LongPrefixEmpirical` (``"long-prefix-empirical"``) — run a
  long prefix, count f's, and decide empirically (f_count > 0 ⟺
  accept).  Linear in the horizon and only horizon-confident, but
  applicable to machines that never declare an absorbing state.
* :class:`FRate` (``"f-rate"``) — the raw prefix count with no verdict
  rewrite, for languages judged by f-*rate* (the periodic L_pq service
  discipline, eq. (10)).

An *acceptor* is anything exposing the machine judge protocol —
``decide(word, horizon=…)`` and ``count_f(word, horizon)`` returning a
:class:`~repro.engine.verdict.DecisionReport` — i.e. every
:class:`~repro.machine.rtalgorithm.RealTimeAlgorithm`, or a plain
callable wrapped in :class:`FunctionAcceptor` (how the ad hoc routing
validator joins the engine without being a machine).

A fourth strategy, ``"online-incremental"``
(:mod:`repro.stream.strategy`), registers lazily on first
:func:`get_strategy` request: it replays the word through the stream
runtime's monitor and also accepts a *raw*
:class:`~repro.automata.timed.TimedBuchiAutomaton`, wrapping it with
the cached :func:`~repro.engine.batch.compiled_tba` machine (streaming
judgement itself runs on the vectorized tables of
:mod:`repro.stream.compiled` where available — see
``docs/performance.md``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from ..obs import hooks as _obs
from .verdict import DecisionReport, Verdict

__all__ = [
    "DecisionStrategy",
    "LassoExact",
    "LongPrefixEmpirical",
    "FRate",
    "FunctionAcceptor",
    "STRATEGIES",
    "get_strategy",
    "decide",
    "resolve_zeno",
]

#: Default judging horizon, matching the machine layer's.
DEFAULT_HORIZON = 10_000


def resolve_zeno(report: DecisionReport, acceptor: Any, word: Any) -> DecisionReport:
    """Exact verdict for a frozen-time lasso the machine could not absorb.

    A lasso word with ``shift == 0`` repeats its loop forever at one
    frozen timestamp, so the operational judge can never see the time
    horizon pass: its replay is cut off after a bounded number of loop
    unrollings (:func:`repro.machine.tape.zeno_event_cap`) and — unless
    an absorbing verdict fired inside that window — comes back
    UNDECIDED.  When the acceptor carries its source automaton
    (``source_tba``, attached by the §3.1.1 compilation), the language
    question is still exactly decidable by region mathematics, which is
    what the ``lasso-exact`` contract promises.  This rewrites such an
    UNDECIDED report in place: verdict from ``accepts_lasso``,
    ``decided_at`` pinned to the stall instant, and
    ``evidence["zeno"] = "region-exact"``.

    Reports that already carry an absorbing verdict, and acceptors with
    no source automaton, pass through untouched (the latter gain
    ``evidence["zeno"] = "cutoff"`` so the bounded replay is visible).
    """
    if report.verdict is not Verdict.UNDECIDED:
        return report
    tba = getattr(acceptor, "source_tba", None)
    if tba is None:
        report.evidence["zeno"] = "cutoff"
        return report
    report.verdict = (
        Verdict.ACCEPT if tba.accepts_lasso(word) else Verdict.REJECT
    )
    report.decided_at = word.time_at(len(word.prefix))
    report.evidence["zeno"] = "region-exact"
    return report


class DecisionStrategy:
    """A decision procedure: (acceptor, word, horizon) → report."""

    name: str = "strategy"

    def run(self, acceptor: Any, word: Any, horizon: int) -> DecisionReport:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class LassoExact(DecisionStrategy):
    """Absorbing-verdict judging (the paper's acceptors' own discipline)."""

    name = "lasso-exact"

    def run(self, acceptor: Any, word: Any, horizon: int) -> DecisionReport:
        from ..machine.tape import zeno_event_cap

        report = acceptor.decide(word, horizon=horizon)
        if zeno_event_cap(word) is not None:
            report = resolve_zeno(report, acceptor, word)
        report.strategy = self.name
        report.evidence.setdefault("discipline", "absorbing-verdict")
        return report


class LongPrefixEmpirical(DecisionStrategy):
    """Prefix f-counting with an empirical accept/reject rewrite.

    The raw machine verdict (usually UNDECIDED — ``count_f`` never
    waits for an absorbing state) is preserved in
    ``evidence["raw_verdict"]``; the report's verdict becomes the
    empirical judgement f_count > 0 ⟺ ACCEPT, which is what the E14
    agreement sweep compares against the exact discipline.
    """

    name = "long-prefix-empirical"

    def run(self, acceptor: Any, word: Any, horizon: int) -> DecisionReport:
        report = acceptor.count_f(word, horizon)
        report.strategy = self.name
        report.evidence.setdefault("discipline", "prefix-f-count")
        report.evidence["raw_verdict"] = report.verdict.value
        report.verdict = Verdict.ACCEPT if report.f_count > 0 else Verdict.REJECT
        return report


class FRate(DecisionStrategy):
    """Raw prefix f-counting, verdict untouched (f-rate judging)."""

    name = "f-rate"

    def run(self, acceptor: Any, word: Any, horizon: int) -> DecisionReport:
        report = acceptor.count_f(word, horizon)
        report.strategy = self.name
        report.evidence.setdefault("discipline", "prefix-f-count")
        return report


class FunctionAcceptor:
    """Adapts a plain decision function to the acceptor protocol.

    ``fn(word, horizon)`` must return a :class:`DecisionReport`; both
    judge entry points delegate to it, so any strategy degrades to
    "call the function".  This is how non-machine validators (the ad
    hoc R_{n,u} checker) ride the batch layer.
    """

    def __init__(self, fn: Callable[[Any, int], DecisionReport], name: str = "fn"):
        self.fn = fn
        self.name = name

    def decide(self, word: Any, horizon: int = DEFAULT_HORIZON) -> DecisionReport:
        return self.fn(word, horizon)

    def count_f(self, word: Any, horizon: int) -> DecisionReport:
        return self.fn(word, horizon)


#: Registry of selectable strategies (the E14 pair + f-rate).
STRATEGIES: Dict[str, DecisionStrategy] = {
    s.name: s for s in (LassoExact(), LongPrefixEmpirical(), FRate())
}

#: Strategies registered by other packages when imported.  The engine
#: cannot import them statically (they import the engine), so
#: :func:`get_strategy` imports the owning module on first request.
_LAZY_STRATEGIES: Dict[str, str] = {
    "online-incremental": "repro.stream",
}


def get_strategy(spec: Union[str, DecisionStrategy]) -> DecisionStrategy:
    """Resolve a strategy name (or pass an instance through)."""
    if isinstance(spec, DecisionStrategy):
        return spec
    if spec not in STRATEGIES and spec in _LAZY_STRATEGIES:
        import importlib

        importlib.import_module(_LAZY_STRATEGIES[spec])
    try:
        return STRATEGIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown decision strategy {spec!r}; known: "
            f"{sorted(set(STRATEGIES) | set(_LAZY_STRATEGIES))}"
        ) from None


def decide(
    acceptor: Any = None,
    word: Any = None,
    *,
    horizon: int = DEFAULT_HORIZON,
    strategy: Union[str, DecisionStrategy] = "lasso-exact",
    seed: Optional[int] = None,
    query: Any = None,
    alphabet: Any = None,
) -> DecisionReport:
    """Judge one word through the engine.

    The single-word entry point every domain's decide helper now routes
    through; ``seed`` is recorded in the evidence (reserved for sampled
    strategies, and what makes batch fan-out reproducible).  ``query``
    (text or a :mod:`repro.query` builder query, ``alphabet`` optionally
    widening its symbol set) stands in for ``acceptor``: the query
    lowers to an exact-lasso acceptor and the word is judged against it.
    """
    if (acceptor is None) == (query is None):
        raise ValueError("pass exactly one of acceptor / query")
    if query is not None:
        from ..query import query_acceptor

        acceptor = query_acceptor(query, alphabet)
    elif alphabet is not None:
        raise ValueError("alphabet= only applies to query= decisions")
    strat = get_strategy(strategy)
    h = _obs.HOOKS
    if h is None:
        report = strat.run(acceptor, word, horizon)
    else:
        with h.span(
            "engine.decide",
            strategy=strat.name,
            horizon=horizon,
            acceptor=getattr(acceptor, "name", type(acceptor).__name__),
        ):
            report = strat.run(acceptor, word, horizon)
        h.count("engine.decisions", strategy=strat.name)
        h.count("engine.verdicts", verdict=report.verdict.value)
    if seed is not None:
        report.evidence["seed"] = seed
    return report
