"""Fault injection for the decision fan-out (tests and benchmarks).

Real-time parallel models treat processor failure as a first-class
event, so the resilience layer needs faults it can summon on demand.
This module provides acceptor *wrappers* that misbehave in controlled,
reproducible ways while staying transparent to the judge protocol —
when a wrapper does not fire, the report it returns is byte-for-byte
the inner acceptor's, which is what lets the fault suite assert the
bit-identical-to-serial guarantee end to end:

* :class:`CrashingAcceptor` — SIGKILLs its own process mid-decision
  (a dead pool worker, the hard failure mode: no exception, no
  traceback, just a closed pipe);
* :class:`FailingAcceptor` — raises an exception mid-decision (a soft
  failure the worker can report before exiting);
* :class:`DelayingAcceptor` — sleeps real wall-clock time per decision
  (a slow worker, for exercising deadline budgets).

Cross-process arming is the subtle part: pool workers are *forked*, so
an in-memory "fail once" flag armed in the parent would re-fire in
every retry child.  :class:`FileFuse` solves it with an append-only
file shared through the filesystem — each firing claims one byte under
``O_APPEND`` (atomic on POSIX), so "fail exactly N times, process-wide"
holds across any number of forks.

By default the crash/fail wrappers only fire in *forked children*
(``in_children_only=True``): the parent pid is recorded at
construction, so a serial run — or the resilience layer's parent-side
serial fallback — judges through them unharmed.

A second family serves simulated *distributed* workloads rather than
the judge protocol: :class:`FaultSchedule` is a stateless seeded
randomness source (every draw is a pure function of the seed and a
caller-chosen key, so replaying a run replays its faults), and
:class:`MessageFaults` applies per-message loss and extra delay from
such a schedule.  Unlike the wrappers above these are usable *outside*
fork children — the commit-protocol simulator (:mod:`repro.txn`) runs
them in the parent process — while still honouring the
``in_children_only`` contract when asked for it.
"""

from __future__ import annotations

import hashlib
import os
import signal
import tempfile
import time
from typing import Any, Callable, Optional, Tuple

from .strategies import DEFAULT_HORIZON
from .verdict import DecisionReport

__all__ = [
    "FileFuse",
    "CrashingAcceptor",
    "FailingAcceptor",
    "DelayingAcceptor",
    "InjectedFault",
    "FaultSchedule",
    "MessageFaults",
]


class InjectedFault(RuntimeError):
    """The exception :class:`FailingAcceptor` raises when it fires."""


class FileFuse:
    """A process-shared budget of fault firings.

    ``pop()`` atomically claims one shot and returns True while shots
    remain; once the budget is spent every later ``pop()`` — in this
    process or any fork — returns False.  Backed by a file so the claim
    survives ``fork()`` and is visible to retries in fresh children.
    """

    def __init__(self, shots: int = 1, path: Optional[str] = None):
        if shots < 0:
            raise ValueError(f"shots must be >= 0, got {shots}")
        self.shots = shots
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-fuse-")
            os.close(fd)
        self.path = path
        open(self.path, "ab").close()

    def pop(self) -> bool:
        """Claim one shot; True iff the fault should fire now."""
        if self.shots == 0:
            return False
        with open(self.path, "ab") as fh:
            fh.write(b"x")
            fh.flush()
            return fh.tell() <= self.shots

    @property
    def spent(self) -> int:
        """How many shots have been claimed so far (capped at shots)."""
        return min(os.path.getsize(self.path), self.shots)

    def reset(self) -> None:
        with open(self.path, "wb"):
            pass


class _Wrapper:
    """Transparent acceptor wrapper base: both judge entry points pass
    through the fault hook, everything else delegates to the inner
    acceptor (so ``name``/``space_limit``-style attributes survive)."""

    def __init__(self, inner: Any):
        self.inner = inner

    def _before(self, word: Any) -> None:
        raise NotImplementedError

    def decide(self, word: Any, horizon: int = DEFAULT_HORIZON) -> DecisionReport:
        self._before(word)
        return self.inner.decide(word, horizon=horizon)

    def count_f(self, word: Any, horizon: int) -> DecisionReport:
        self._before(word)
        return self.inner.count_f(word, horizon)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class CrashingAcceptor(_Wrapper):
    """Kill the judging process with SIGKILL while the fuse has shots.

    The worker dies without unwinding — exactly what a OOM-killed or
    segfaulted pool process looks like from the parent: the result pipe
    closes with nothing on it.  With ``in_children_only`` (default) the
    pid recorded at construction is immune, so only forked workers die.
    """

    def __init__(
        self,
        inner: Any,
        fuse: FileFuse,
        *,
        match: Optional[Callable[[Any], bool]] = None,
        in_children_only: bool = True,
    ):
        super().__init__(inner)
        self.fuse = fuse
        self.match = match
        self._parent_pid = os.getpid() if in_children_only else None

    def _before(self, word: Any) -> None:
        if self._parent_pid is not None and os.getpid() == self._parent_pid:
            return
        if self.match is not None and not self.match(word):
            return
        if self.fuse.pop():
            os.kill(os.getpid(), signal.SIGKILL)


class FailingAcceptor(_Wrapper):
    """Raise :class:`InjectedFault` while the fuse has shots.

    Unlike a crash this is a *soft* failure: the worker catches it and
    reports the chunk as failed, so the parent sees the reason.  Fires
    in any process by default (``in_children_only=False``) — the serial
    retry path needs to be exercisable too.
    """

    def __init__(
        self,
        inner: Any,
        fuse: FileFuse,
        *,
        match: Optional[Callable[[Any], bool]] = None,
        in_children_only: bool = False,
    ):
        super().__init__(inner)
        self.fuse = fuse
        self.match = match
        self._parent_pid = os.getpid() if in_children_only else None

    def _before(self, word: Any) -> None:
        if self._parent_pid is not None and os.getpid() == self._parent_pid:
            return
        if self.match is not None and not self.match(word):
            return
        if self.fuse.pop():
            raise InjectedFault(
                f"injected fault (fuse {os.path.basename(self.fuse.path)})"
            )


class DelayingAcceptor(_Wrapper):
    """Sleep ``delay_s`` wall-clock seconds before every judgement.

    The slow-worker fault: reports stay bit-identical to the inner
    acceptor's, only later — which is what a deadline budget has to cut
    off.  ``match`` restricts the slowness to selected words.
    """

    def __init__(
        self,
        inner: Any,
        delay_s: float,
        *,
        match: Optional[Callable[[Any], bool]] = None,
    ):
        super().__init__(inner)
        self.delay_s = delay_s
        self.match = match

    def _before(self, word: Any) -> None:
        if self.match is not None and not self.match(word):
            return
        time.sleep(self.delay_s)


class FaultSchedule:
    """Deterministic per-seed randomness keyed by caller-chosen tuples.

    Every draw is ``blake2b(repr((seed,) + key))`` mapped to [0, 1):
    stateless, so the same ``(seed, key)`` always answers the same way
    regardless of draw order, process, or fork topology.  That is the
    property the fork-pool fuses buy with a shared file — here it comes
    for free, which is what makes the schedule usable in the parent
    process and in children alike.

    Keys should name the decision being made (``("loss", src, dst,
    kind, attempt)``), not a sequence number: order-free keys keep a
    simulation's faults stable under refactors that reorder draws.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def _u(self, *key: Any) -> float:
        payload = repr((self.seed,) + key).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def chance(self, p: float, *key: Any) -> bool:
        """True with probability ``p`` (deterministic in seed + key)."""
        if p <= 0.0:
            return False
        return self._u("chance", *key) < p

    def pick(self, lo: int, hi: int, *key: Any) -> int:
        """An integer in [lo, hi] (inclusive), deterministic in seed + key."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + int(self._u("pick", *key) * (hi - lo + 1))


class MessageFaults:
    """Per-message loss and extra-delay injection from a seeded schedule.

    The network-fault counterpart of the acceptor wrappers: a simulated
    sender asks :meth:`apply` what happens to one message, identified
    by ``(src, dst, kind, attempt)``, and gets back its final delivery
    delay — or ``None`` if the message is lost.  Decisions come from a
    :class:`FaultSchedule`, so a run's fault pattern is a pure function
    of the seed and survives replay, re-ordering, and forks.

    ``in_children_only`` defaults to **False** — simulators drive this
    from the parent process — but the contract is the same as the
    wrappers': when True, calls from the constructing pid report every
    message as delivered with its base delay.  ``match`` restricts
    faults to selected messages (e.g. only decision broadcasts).
    """

    def __init__(
        self,
        seed: int,
        *,
        loss_rate: float = 0.0,
        delay_rate: float = 0.0,
        extra_delay: Tuple[int, int] = (1, 4),
        match: Optional[Callable[[Any, Any, Any], bool]] = None,
        in_children_only: bool = False,
    ):
        if not (0.0 <= loss_rate <= 1.0):
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if not (0.0 <= delay_rate <= 1.0):
            raise ValueError(f"delay_rate must be in [0, 1], got {delay_rate}")
        lo, hi = extra_delay
        if lo < 0 or hi < lo:
            raise ValueError(f"extra_delay must satisfy 0 <= lo <= hi, got {extra_delay}")
        self.schedule = FaultSchedule(seed)
        self.loss_rate = loss_rate
        self.delay_rate = delay_rate
        self.extra_delay = (lo, hi)
        self.match = match
        self._parent_pid = os.getpid() if in_children_only else None
        self.lost = 0
        self.delayed = 0

    def _protected(self) -> bool:
        return self._parent_pid is not None and os.getpid() == self._parent_pid

    def _matches(self, src: Any, dst: Any, kind: Any) -> bool:
        return self.match is None or self.match(src, dst, kind)

    def dropped(self, src: Any, dst: Any, kind: Any, attempt: int = 0) -> bool:
        """Is this message lost?  (Does not count toward ``lost``.)"""
        if self._protected() or not self._matches(src, dst, kind):
            return False
        return self.schedule.chance(self.loss_rate, "loss", src, dst, kind, attempt)

    def extra(self, src: Any, dst: Any, kind: Any, attempt: int = 0) -> int:
        """Extra delay chronons added to this message (0 when unaffected)."""
        if self._protected() or not self._matches(src, dst, kind):
            return 0
        if not self.schedule.chance(self.delay_rate, "delay", src, dst, kind, attempt):
            return 0
        lo, hi = self.extra_delay
        return self.schedule.pick(lo, hi, "delay-amount", src, dst, kind, attempt)

    def apply(
        self, src: Any, dst: Any, kind: Any, base_delay: int, attempt: int = 0
    ) -> Optional[int]:
        """Final delivery delay for one message, or None if it is lost."""
        if self.dropped(src, dst, kind, attempt):
            self.lost += 1
            return None
        extra = self.extra(src, dst, kind, attempt)
        if extra:
            self.delayed += 1
        return base_delay + extra
