"""Fault injection for the decision fan-out (tests and benchmarks).

Real-time parallel models treat processor failure as a first-class
event, so the resilience layer needs faults it can summon on demand.
This module provides acceptor *wrappers* that misbehave in controlled,
reproducible ways while staying transparent to the judge protocol —
when a wrapper does not fire, the report it returns is byte-for-byte
the inner acceptor's, which is what lets the fault suite assert the
bit-identical-to-serial guarantee end to end:

* :class:`CrashingAcceptor` — SIGKILLs its own process mid-decision
  (a dead pool worker, the hard failure mode: no exception, no
  traceback, just a closed pipe);
* :class:`FailingAcceptor` — raises an exception mid-decision (a soft
  failure the worker can report before exiting);
* :class:`DelayingAcceptor` — sleeps real wall-clock time per decision
  (a slow worker, for exercising deadline budgets).

Cross-process arming is the subtle part: pool workers are *forked*, so
an in-memory "fail once" flag armed in the parent would re-fire in
every retry child.  :class:`FileFuse` solves it with an append-only
file shared through the filesystem — each firing claims one byte under
``O_APPEND`` (atomic on POSIX), so "fail exactly N times, process-wide"
holds across any number of forks.

By default the crash/fail wrappers only fire in *forked children*
(``in_children_only=True``): the parent pid is recorded at
construction, so a serial run — or the resilience layer's parent-side
serial fallback — judges through them unharmed.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from typing import Any, Callable, Optional

from .strategies import DEFAULT_HORIZON
from .verdict import DecisionReport

__all__ = [
    "FileFuse",
    "CrashingAcceptor",
    "FailingAcceptor",
    "DelayingAcceptor",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """The exception :class:`FailingAcceptor` raises when it fires."""


class FileFuse:
    """A process-shared budget of fault firings.

    ``pop()`` atomically claims one shot and returns True while shots
    remain; once the budget is spent every later ``pop()`` — in this
    process or any fork — returns False.  Backed by a file so the claim
    survives ``fork()`` and is visible to retries in fresh children.
    """

    def __init__(self, shots: int = 1, path: Optional[str] = None):
        if shots < 0:
            raise ValueError(f"shots must be >= 0, got {shots}")
        self.shots = shots
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-fuse-")
            os.close(fd)
        self.path = path
        open(self.path, "ab").close()

    def pop(self) -> bool:
        """Claim one shot; True iff the fault should fire now."""
        if self.shots == 0:
            return False
        with open(self.path, "ab") as fh:
            fh.write(b"x")
            fh.flush()
            return fh.tell() <= self.shots

    @property
    def spent(self) -> int:
        """How many shots have been claimed so far (capped at shots)."""
        return min(os.path.getsize(self.path), self.shots)

    def reset(self) -> None:
        with open(self.path, "wb"):
            pass


class _Wrapper:
    """Transparent acceptor wrapper base: both judge entry points pass
    through the fault hook, everything else delegates to the inner
    acceptor (so ``name``/``space_limit``-style attributes survive)."""

    def __init__(self, inner: Any):
        self.inner = inner

    def _before(self, word: Any) -> None:
        raise NotImplementedError

    def decide(self, word: Any, horizon: int = DEFAULT_HORIZON) -> DecisionReport:
        self._before(word)
        return self.inner.decide(word, horizon=horizon)

    def count_f(self, word: Any, horizon: int) -> DecisionReport:
        self._before(word)
        return self.inner.count_f(word, horizon)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class CrashingAcceptor(_Wrapper):
    """Kill the judging process with SIGKILL while the fuse has shots.

    The worker dies without unwinding — exactly what a OOM-killed or
    segfaulted pool process looks like from the parent: the result pipe
    closes with nothing on it.  With ``in_children_only`` (default) the
    pid recorded at construction is immune, so only forked workers die.
    """

    def __init__(
        self,
        inner: Any,
        fuse: FileFuse,
        *,
        match: Optional[Callable[[Any], bool]] = None,
        in_children_only: bool = True,
    ):
        super().__init__(inner)
        self.fuse = fuse
        self.match = match
        self._parent_pid = os.getpid() if in_children_only else None

    def _before(self, word: Any) -> None:
        if self._parent_pid is not None and os.getpid() == self._parent_pid:
            return
        if self.match is not None and not self.match(word):
            return
        if self.fuse.pop():
            os.kill(os.getpid(), signal.SIGKILL)


class FailingAcceptor(_Wrapper):
    """Raise :class:`InjectedFault` while the fuse has shots.

    Unlike a crash this is a *soft* failure: the worker catches it and
    reports the chunk as failed, so the parent sees the reason.  Fires
    in any process by default (``in_children_only=False``) — the serial
    retry path needs to be exercisable too.
    """

    def __init__(
        self,
        inner: Any,
        fuse: FileFuse,
        *,
        match: Optional[Callable[[Any], bool]] = None,
        in_children_only: bool = False,
    ):
        super().__init__(inner)
        self.fuse = fuse
        self.match = match
        self._parent_pid = os.getpid() if in_children_only else None

    def _before(self, word: Any) -> None:
        if self._parent_pid is not None and os.getpid() == self._parent_pid:
            return
        if self.match is not None and not self.match(word):
            return
        if self.fuse.pop():
            raise InjectedFault(
                f"injected fault (fuse {os.path.basename(self.fuse.path)})"
            )


class DelayingAcceptor(_Wrapper):
    """Sleep ``delay_s`` wall-clock seconds before every judgement.

    The slow-worker fault: reports stay bit-identical to the inner
    acceptor's, only later — which is what a deadline budget has to cut
    off.  ``match`` restricts the slowness to selected words.
    """

    def __init__(
        self,
        inner: Any,
        delay_s: float,
        *,
        match: Optional[Callable[[Any], bool]] = None,
    ):
        super().__init__(inner)
        self.delay_s = delay_s
        self.match = match

    def _before(self, word: Any) -> None:
        if self.match is not None and not self.match(word):
            return
        time.sleep(self.delay_s)
