"""repro.engine — the unified decision layer.

Every application of the paper's model ultimately asks the same
question: *given an acceptor and a timed ω-word, what is the verdict?*
Before this package, each domain answered it with a private loop —
fresh :class:`~repro.kernel.simulator.Simulator`, private horizon
convention, private report shape.  The engine separates *acceptor
compilation* from *evaluation* (the split complex-event-recognition
systems argue for) and gives every domain one substrate:

``engine.verdict``
    The shared vocabulary: :class:`Verdict` and the evidence-carrying
    :class:`DecisionReport`.
``engine.strategies``
    Pluggable decision procedures — the E14 ablation pair
    (``lasso-exact`` absorbing-verdict vs ``long-prefix-empirical``
    f-counting) plus ``f-rate`` — and the single-word :func:`decide`.
``engine.batch``
    :func:`decide_many` (chunked, seeded, deterministically-ordered
    process-pool fan-out) and the compiled-acceptor LRU
    (:func:`cached_acceptor`, :func:`compiled_tba`).
``engine.resilience``
    The fault-tolerant fan-out: :func:`decide_many_resilient` survives
    killed workers (chunk retries with capped backoff and splitting),
    enforces a per-batch wall-clock deadline budget, and degrades
    gracefully (serial fallback, cheaper-strategy fallback) with
    explicit evidence markers — see ``docs/architecture.md``'s
    "Failure model & recovery".
``engine.faults``
    Reproducible fault injection (process-killing, exception-raising,
    and delaying acceptor wrappers over a fork-safe
    :class:`FileFuse`) for the resilience tests and benchmarks.

The machine, deadlines, dataacc, rtdb, and adhoc decide helpers all
route through here; see ``docs/architecture.md``.
"""

from .batch import (
    AcceptorCache,
    cached_acceptor,
    clear_caches,
    compiled_tba,
    decide_many,
)
from .faults import (
    CrashingAcceptor,
    DelayingAcceptor,
    FailingAcceptor,
    FaultSchedule,
    FileFuse,
    InjectedFault,
    MessageFaults,
)
from .resilience import (
    BatchOutcome,
    DegradePolicy,
    RetryPolicy,
    decide_many_resilient,
)
from .strategies import (
    STRATEGIES,
    DecisionStrategy,
    FRate,
    FunctionAcceptor,
    LassoExact,
    LongPrefixEmpirical,
    decide,
    get_strategy,
)
from .verdict import DecisionReport, Verdict

__all__ = [
    "Verdict",
    "DecisionReport",
    "DecisionStrategy",
    "LassoExact",
    "LongPrefixEmpirical",
    "FRate",
    "FunctionAcceptor",
    "STRATEGIES",
    "get_strategy",
    "decide",
    "decide_many",
    "AcceptorCache",
    "cached_acceptor",
    "compiled_tba",
    "clear_caches",
    "decide_many_resilient",
    "RetryPolicy",
    "DegradePolicy",
    "BatchOutcome",
    "FileFuse",
    "CrashingAcceptor",
    "FailingAcceptor",
    "DelayingAcceptor",
    "InjectedFault",
    "FaultSchedule",
    "MessageFaults",
]
