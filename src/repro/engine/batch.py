"""Batched, parallel decision fan-out and the compiled-acceptor cache.

``decide_many`` is the production entry point the ROADMAP's batching
direction calls for: judge a whole sweep of words against one acceptor,
optionally across a process pool, with three guarantees:

* **Deterministic order** — reports come back in word order regardless
  of worker count or chunking;
* **Bit-identical to serial** — every run builds a fresh
  :class:`~repro.kernel.simulator.Simulator`, so a word's report is a
  pure function of (acceptor, word, horizon, strategy, seed) and the
  pooled path returns exactly what the serial path would;
* **Seeded** — each word's report carries ``evidence["seed"] =
  seed + index``, so sampled strategies stay reproducible under any
  fan-out.

The pool uses the ``fork`` start method (Linux; the CI smoke job pins
it): the parent publishes the job in a token-keyed registry before
forking, so acceptors and words — which close over arbitrary generator
programs and are therefore unpicklable — are inherited by memory copy
and never serialized.  Only ``(token, lo, hi)`` chunk descriptors
travel to the children and only plain
:class:`~repro.engine.verdict.DecisionReport` lists travel back.  The
token makes the hand-off reentrant: concurrent ``decide_many`` calls
(from threads, or nested inside an acceptor) each fork against their
own registry entry.  The fault-tolerant variant of this fan-out —
worker-death retries, deadline budgets, graceful degradation — lives in
:mod:`repro.engine.resilience` on the same chunk protocol.
Where ``fork`` is unavailable (or ``workers <= 1``) the call degrades
to the serial loop, results unchanged.

The second half of the module is the compiled-acceptor LRU: building an
acceptor is often far more expensive than one decision (notably the
TBA→machine compilation of :mod:`repro.machine.from_tba`, which used to
be recompiled on every call).  :func:`cached_acceptor` memoizes any
identity-keyed construction, anchoring the keyed objects so ``id``
reuse cannot alias entries; :func:`compiled_tba` is the TBA
specialization.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import hooks as _obs
from .strategies import DEFAULT_HORIZON, DecisionStrategy, get_strategy
from .verdict import DecisionReport

__all__ = [
    "decide_many",
    "AcceptorCache",
    "cached_acceptor",
    "compiled_tba",
    "clear_caches",
]

#: In-flight pooled jobs, keyed by a per-call token:
#: token -> (acceptor, words, horizon, strategy, seed).  The parent
#: registers its job under a fresh token immediately before forking and
#: the children look it up by the token travelling with each chunk, so
#: two concurrent ``decide_many`` calls (threads, or a decision nested
#: inside an acceptor) can never clobber each other's hand-off.
_JOBS: Dict[int, Tuple[Any, Sequence[Any], int, DecisionStrategy, int]] = {}
_JOBS_LOCK = threading.Lock()
_JOB_TOKENS = itertools.count()


def _register_job(
    job: Tuple[Any, Sequence[Any], int, DecisionStrategy, int]
) -> int:
    """Claim a token and publish ``job`` for children forked after now."""
    with _JOBS_LOCK:
        token = next(_JOB_TOKENS)
        _JOBS[token] = job
    return token


def _release_job(token: int) -> None:
    with _JOBS_LOCK:
        _JOBS.pop(token, None)


def _decide_one(
    acceptor: Any,
    word: Any,
    horizon: int,
    strategy: DecisionStrategy,
    seed: int,
    index: int,
) -> DecisionReport:
    """One seeded, index-stamped decision (shared by every backend)."""
    h = _obs.HOOKS
    if h is not None:
        h.count("engine.words_judged", strategy=strategy.name)
    report = strategy.run(acceptor, word, horizon)
    report.evidence["seed"] = seed + index
    report.evidence["index"] = index
    return report


def _run_chunk(task: Tuple[int, int, int]) -> List[DecisionReport]:
    """Pool worker: judge one contiguous index range of the tokened job."""
    token, lo, hi = task
    acceptor, words, horizon, strategy, seed = _JOBS[token]
    return [
        _decide_one(acceptor, words[i], horizon, strategy, seed, i)
        for i in range(lo, hi)
    ]


def _run_chunk_metered(
    task: Tuple[int, int, int]
) -> Tuple[List[DecisionReport], Optional[List[Dict[str, Any]]]]:
    """:func:`_run_chunk` under fresh child instrumentation.

    A forked pool worker inherits the parent's hooks by memory *copy*:
    anything it counts is invisible to the parent and dies with the
    process.  When hooks were installed at fork time, the chunk runs
    under a fresh registry instead and its full dump rides back with
    the reports for the parent to merge — so ``engine.*`` / ``kernel.*``
    counts match the serial path exactly (pinned by
    ``tests/test_shard_metrics.py``).
    """
    from ..obs import hooks as _hooks

    if _hooks.HOOKS is None:
        return _run_chunk(task), None
    with _hooks.instrumented() as inst:
        reports = _run_chunk(task)
    return reports, inst.registry.dump()


#: Auto-backend heuristic floor: below ``max(this, 8 * workers)`` words
#: a forked pool's startup cost dominates the work, so ``backend="auto"``
#: routes ``workers > 1`` calls to the serial path (recorded in
#: ``engine.backend_fallbacks{reason="small-batch"}``).
MIN_POOL_WORDS = 64

BACKENDS = ("auto", "serial", "fork", "shards")


def decide_many(
    acceptor: Any,
    words: Sequence[Any],
    *,
    horizon: int = DEFAULT_HORIZON,
    strategy: Union[str, DecisionStrategy] = "lasso-exact",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    seed: int = 0,
    backend: str = "auto",
) -> List[DecisionReport]:
    """Judge every word in ``words``, optionally across a process pool.

    Returns one report per word, in word order, bit-identical across
    backends.  ``backend`` selects the fan-out:

    * ``"serial"`` — the in-process loop;
    * ``"fork"`` — the fork-per-batch pool (job inherited by memory
      copy, so unpicklable acceptors work);
    * ``"shards"`` — the persistent shard pool of :mod:`repro.shard`
      (warm compiled acceptors across calls; requires a picklable
      acceptor, and falls back with a recorded reason otherwise);
    * ``"auto"`` (default) — serial for small batches where a pool
      would lose, otherwise shards when the shared pool is already
      warm, else fork.

    Every routing-away-from-a-pool decision is counted in
    ``engine.backend_fallbacks{reason=...}``.
    """
    if workers < 1:
        raise ValueError(
            f"workers must be >= 1, got {workers} (use workers=1 for the "
            "serial path)"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(
            f"chunk_size must be >= 1 or None for automatic sizing, got "
            f"{chunk_size}"
        )
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    words = list(words)
    strat = get_strategy(strategy)
    n = len(words)
    # A raw TBA is accepted on every backend: shard workers receive it
    # as-is (and compile it into their own warm cache); local judging
    # goes through the same cached compilation here.
    from ..automata.timed import TimedBuchiAutomaton

    shippable = acceptor
    if isinstance(acceptor, TimedBuchiAutomaton):
        acceptor = compiled_tba(acceptor)
    fork_ok = (
        workers > 1
        and n > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    h = _obs.HOOKS

    def fallback(reason: str, to: str) -> str:
        if h is not None:
            h.count("engine.backend_fallbacks", reason=reason)
        return to

    if backend == "serial" or workers <= 1 or n <= 1:
        mode = "serial"
    elif backend == "fork":
        mode = "fork" if fork_ok else fallback("fork-unavailable", "serial")
    elif backend == "shards":
        mode = "shards" if fork_ok else fallback("fork-unavailable", "serial")
    elif not fork_ok:
        mode = "serial"
    elif n < max(MIN_POOL_WORDS, 8 * workers):
        mode = fallback("small-batch", "serial")
    else:
        from ..shard.pool import pool_is_warm

        mode = "shards" if pool_is_warm() else "fork"
    if mode == "shards":
        # Preflight the pipe: a closure-laden acceptor or customized
        # strategy cannot reach a persistent worker.
        from ..shard import pool as _shard_pool

        try:
            lang_spec = _shard_pool.language_spec(shippable)
            strat_spec = _shard_pool.strategy_spec(strat)
        except _shard_pool.LanguageUnshippable as exc:
            mode = fallback(exc.reason, "fork" if fork_ok else "serial")

    if h is not None:
        h.count(
            "engine.batches", mode="pool" if mode == "fork" else mode
        )
        h.count("engine.batch_words", n)

    def run_serial() -> List[DecisionReport]:
        return [
            _decide_one(acceptor, words[i], horizon, strat, seed, i)
            for i in range(n)
        ]

    def run_fork() -> List[DecisionReport]:
        size = chunk_size if chunk_size is not None else max(
            1, math.ceil(n / (workers * 4))
        )
        ctx = multiprocessing.get_context("fork")
        token = _register_job((acceptor, words, horizon, strat, seed))
        chunks = [(token, lo, min(lo + size, n)) for lo in range(0, n, size)]
        try:
            with ctx.Pool(processes=min(workers, len(chunks))) as pool:
                parts = pool.map(_run_chunk_metered, chunks)
        finally:
            _release_job(token)
        if h is not None:
            for _reports, delta in parts:
                if delta:
                    h.registry.merge(delta)
        return [report for part, _delta in parts for report in part]

    def run_shards() -> List[DecisionReport]:
        from ..shard import pool as shard_pool

        router = shard_pool.shared_pool(workers)
        k = max(1, min(workers, router.n_shards))
        size = chunk_size if chunk_size is not None else max(
            1, math.ceil(n / (k * 4))
        )
        chunks = [(lo, min(lo + size, n)) for lo in range(0, n, size)]
        slots, failures = shard_pool.run_chunks(
            router, lang_spec, strat_spec, words, chunks,
            horizon=horizon, seed=seed, workers=workers,
        )
        # Any chunk the pool could not finish is judged in-process —
        # same pure function, so the batch stays bit-identical.
        for lo, hi, reason, _detail in failures:
            if h is not None:
                h.count("engine.backend_fallbacks", reason=f"shard-{reason}")
            for i in range(lo, hi):
                slots[i] = _decide_one(acceptor, words[i], horizon, strat, seed, i)
        return [slots[i] for i in range(n)]

    run = {"serial": run_serial, "fork": run_fork, "shards": run_shards}[mode]
    if h is None:
        return run()
    with h.span(
        "engine.decide_many",
        words=n,
        workers=1 if mode == "serial" else workers,
        strategy=strat.name,
        horizon=horizon,
        backend=mode,
    ):
        return run()


# ----------------------------------------------------------------------
# compiled-acceptor cache
# ----------------------------------------------------------------------

class AcceptorCache:
    """A small LRU of compiled acceptors.

    Keys are arbitrary hashables — typically ``(tag, id(obj), …)``.
    Because ``id`` keys are only valid while the keyed object lives,
    every entry also *anchors* the objects it was keyed on, so a cached
    entry can never be served for a recycled id.

    ``maxsize=0`` means *no caching*: every lookup bypasses the table
    and rebuilds (counted as ``outcome="bypass"`` in the obs counter),
    rather than the old insert-then-immediately-evict churn that
    reported a hit-capable cache while never serving one.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError(
                f"maxsize must be >= 0 (0 disables caching), got {maxsize}"
            )
        self.maxsize = maxsize
        self._entries: "OrderedDict[Any, Tuple[Tuple[Any, ...], Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: Any, factory: Callable[[], Any], *anchors: Any) -> Any:
        h = _obs.HOOKS
        if self.maxsize == 0:
            self.misses += 1
            if h is not None:
                h.count("engine.acceptor_cache", outcome="bypass")
                h.gauge("engine.acceptor_cache_size", 0)
            return factory()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if h is not None:
                h.count("engine.acceptor_cache", outcome="hit")
            return entry[1]
        self.misses += 1
        if h is not None:
            h.count("engine.acceptor_cache", outcome="miss")
        acceptor = factory()
        self._entries[key] = (anchors, acceptor)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            if h is not None:
                h.count("engine.acceptor_cache", outcome="eviction")
        if h is not None:
            h.gauge("engine.acceptor_cache_size", len(self._entries))
        return acceptor

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache every domain's decide helper shares.
_CACHE = AcceptorCache()


def cached_acceptor(key: Any, factory: Callable[[], Any], *anchors: Any) -> Any:
    """Memoized acceptor construction through the shared engine cache."""
    return _CACHE.get_or_build(key, factory, *anchors)


def compiled_tba(tba: Any, allow_nondeterministic: bool = False) -> Any:
    """The cached TBA→machine compilation (Section 3.1.1, executable).

    Same contract as :func:`repro.machine.from_tba.tba_to_algorithm`,
    but repeated calls on the same automaton reuse the compiled
    :class:`~repro.machine.rtalgorithm.RealTimeAlgorithm`.
    """
    from ..machine.from_tba import tba_to_algorithm

    return cached_acceptor(
        ("tba", id(tba), allow_nondeterministic),
        lambda: tba_to_algorithm(tba, allow_nondeterministic=allow_nondeterministic),
        tba,
    )


def clear_caches() -> None:
    """Drop every cached acceptor (tests and long-lived services)."""
    _CACHE.clear()
