"""``repro.spec`` — timer-bound spec combinators + conformance fuzzing.

The declarative front half of the ROADMAP's spec-layer direction: build
real-time specifications from ``Timer``/``MinTime``/``MaxTime`` bounds
(:mod:`repro.spec.combinators`), compile them onto the engine/stream
acceptor substrate (:mod:`repro.spec.compile`), evaluate them against
an independent direct semantics (:mod:`repro.spec.semantics`), and
differentially fuzz every decision path the repo has grown
(:mod:`repro.spec.conformance` — also a CLI::

    python -m repro.spec.conformance --seed 0 --cases 200

).  See ``docs/spec.md`` for the combinator semantics and their mapping
onto the paper's Definitions 3.4 / §4.1.
"""

from .combinators import (
    Alt,
    Both,
    Eventually,
    Loop,
    PhaseSpec,
    RTBound,
    Seq,
    Spec,
    actions_of,
    alt,
    as_omega,
    both,
    eventually,
    is_deterministic_spec,
    loop,
    max_bound,
    phases_of,
    rt_bound,
    seq,
    to_source,
)
from .compile import (
    from_deadline_spec,
    spec_acceptor,
    spec_monitor,
    to_deadline_spec,
    to_tba,
)
from .semantics import holds

__all__ = [
    "Spec",
    "PhaseSpec",
    "RTBound",
    "Seq",
    "Loop",
    "Eventually",
    "Alt",
    "Both",
    "rt_bound",
    "seq",
    "loop",
    "eventually",
    "alt",
    "both",
    "as_omega",
    "actions_of",
    "phases_of",
    "is_deterministic_spec",
    "max_bound",
    "to_source",
    "to_tba",
    "spec_acceptor",
    "spec_monitor",
    "to_deadline_spec",
    "from_deadline_spec",
    "holds",
]
