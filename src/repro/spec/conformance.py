"""Conformance fuzzing: every decision path must tell the same story.

The repo has grown several independently-implemented routes from a
timed specification to a verdict; each route pair below is a
*differential oracle* — on any (spec, word) the two sides must agree,
so a disagreement is a bug in one of them by construction, no expected
output needed:

``semantics``
    the spec-compiled TBA (:func:`repro.spec.compile.spec_acceptor`,
    exact lasso acceptance through ``engine.decide``) vs the direct
    denotational semantics (:func:`repro.spec.semantics.holds`).
``monitor``
    :class:`~repro.stream.monitor.TBAMonitor` on the compiled
    dense-table path vs the interpreted ``_step_configs`` path —
    per-event verdict streams, accept-visit counters, and the
    ``ingest_many`` bulk scan vs the event-at-a-time loop.
``strategy``
    ``engine.decide(strategy="online-incremental")`` (stream replay)
    vs ``strategy="lasso-exact"`` (batch) on the shared §3.1.1 machine
    compilation — report-identical, not just verdict-identical.
``shards``
    ``decide_many(backend="shards")`` (persistent worker pool, warm
    compiled caches) vs ``backend="serial"`` on raw deterministic TBAs.
``checkpoint``
    mid-stream :func:`repro.stream.checkpoint.checkpoint` / ``restore``
    across *both* stepping paths (compiled snapshot → interpreted
    restore and vice versa, plus a JSON round-trip) vs the
    uninterrupted run.

Words and specs come from a seeded generator (reproducible without any
third-party dependency; ``tests/test_spec_conformance.py`` adds a
hypothesis-driven layer when hypothesis is importable).  On a
disagreement the harness *minimizes* the counterexample — greedily
shrinking the word (drop events, tighten times) and then the spec
(drop alternatives, phases, bounds) while the disagreement persists —
and emits a ready-to-paste regression test via
:func:`regression_source`.

Three generator modes share the oracle pairs and the minimizer.  The
default fuzzes combinator *specs*; ``gen="tba"`` (CLI ``--gen tba``)
fuzzes **raw random automata** from :func:`gen_tba` instead — states,
guarded/resetting transitions, and accepting sets drawn directly, so
the sweep covers TBA shapes the spec compiler never emits
(nondeterministic branching that is not an ``alt`` of chains,
multi-clock guards, unreachable or dead states).  The ``semantics``
pair then reads ground truth from region-exact ``accepts_lasso``
rather than the combinator denotation, and shrinking drops
transitions/guards/resets/accepting states instead of spec phases.

``gen="query"`` (CLI ``--gen query``) draws random :mod:`repro.query`
builder queries (:func:`gen_query`) and runs their *lowered* ω-specs
through every pair above, plus two query-layer differentials per case:

``query-roundtrip``
    ``parse(to_text(q))`` must lower to the identical spec — the text
    grammar and the fluent builder are the same algebra.
``query-plan``
    a fused :class:`~repro.query.plan.QueryPlan` product over 2–3
    random chain queries vs independent per-query
    :class:`~repro.stream.monitor.TBAMonitor`\\ s — per-event
    ``query_verdicts()`` streams must match on both stepping paths,
    and the plan monitor's bulk scan must land where its scalar loop
    does.

CLI::

    python -m repro.spec.conformance --seed 0 --cases 200
    python -m repro.spec.conformance --gen tba --cases 100
    python -m repro.spec.conformance --gen query --cases 200

exits non-zero iff any pair disagreed.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..automata.timed import TimedBuchiAutomaton, TimedTransition
from ..engine.batch import compiled_tba, decide_many
from ..engine.strategies import decide
from ..engine.verdict import Verdict
from ..kernel.clock import And, Ge, Le, Not, TrueConstraint
from ..machine.from_tba import _is_deterministic
from ..words.timedword import TimedWord
from .combinators import (
    Spec,
    actions_of,
    alt,
    both,
    eventually,
    is_deterministic_spec,
    loop,
    max_bound,
    rt_bound,
    seq,
    to_source,
)
from .compile import spec_acceptor, to_tba
from .semantics import holds

__all__ = [
    "PAIRS",
    "GENS",
    "Case",
    "Disagreement",
    "gen_spec",
    "gen_tba",
    "gen_query",
    "gen_plan_queries",
    "gen_word",
    "case_source",
    "check_pair",
    "minimize",
    "regression_source",
    "run",
    "main",
]

#: What an oracle pair judges: a combinator spec or a raw automaton.
Case = Any  # Spec | TimedBuchiAutomaton

#: The case generator modes ``run(gen=...)`` accepts.
GENS: Tuple[str, ...] = ("spec", "tba", "query")

#: The differential oracle pairs, in the order the CLI reports them.
PAIRS: Tuple[str, ...] = (
    "semantics",
    "monitor",
    "strategy",
    "shards",
    "checkpoint",
)

#: Events replayed into stream monitors per word (prefix + unrollings).
REPLAY_LOOPS = 3


@dataclass
class Disagreement:
    """One oracle-pair violation, already minimized."""

    pair: str
    spec: Case
    alphabet: Tuple[Any, ...]
    word: TimedWord
    detail: str

    def describe(self) -> str:
        return (
            f"[{self.pair}] {self.detail}\n"
            f"  spec:  {case_source(self.spec)}\n"
            f"  word:  lasso(prefix={list(self.word.prefix)!r}, "
            f"loop={list(self.word.loop)!r}, shift={self.word.shift})\n"
            f"  alpha: {self.alphabet!r}\n"
            f"{regression_source(self.pair, self.spec, self.alphabet, self.word)}"
        )


# -- seeded generators -------------------------------------------------

def gen_spec(rng: random.Random, actions: Sequence[Any], depth: int = 2) -> Spec:
    """A random ω-spec over ``actions`` (depth-bounded grammar walk)."""

    def phase():
        lo = rng.choice((0, 0, 0, 1, 2))
        return rt_bound(rng.choice(actions), lo, lo + rng.randrange(4))

    def chain():
        return seq(*(phase() for _ in range(rng.randrange(1, 4))))

    def go(d: int) -> Spec:
        r = rng.random()
        if d <= 0 or r < 0.40:
            return loop(chain())
        if r < 0.65:
            return eventually(chain())
        parts = 2 if rng.random() < 0.8 else 3
        if r < 0.85:
            return alt(*(go(d - 1) for _ in range(parts)))
        return both(*(go(d - 1) for _ in range(parts)))

    return go(depth)


def _case_tba(case: Case, alphabet: Tuple[Any, ...]) -> TimedBuchiAutomaton:
    """The automaton a case denotes (raw, or compiled from the spec)."""
    if isinstance(case, TimedBuchiAutomaton):
        return case
    return to_tba(case, alphabet)


def _case_deterministic(case: Case) -> bool:
    if isinstance(case, TimedBuchiAutomaton):
        return _is_deterministic(case)
    return is_deterministic_spec(case)


def gen_tba(
    rng: random.Random, alphabet: Sequence[Any], max_states: int = 4
) -> TimedBuchiAutomaton:
    """A random raw TBA over ``alphabet`` — shapes the compiler never
    emits: arbitrary branching (including nondeterministic same-symbol
    edges), multi-clock guards, self-loops, dead and unreachable
    states, possibly-empty languages."""
    n = rng.randrange(2, max_states + 1)
    states = list(range(n))
    clocks = ("x",) if rng.random() < 0.6 else ("x", "y")

    def guard():
        c = rng.choice(clocks)
        k = rng.randrange(5)
        r = rng.random()
        if r < 0.30:
            return TrueConstraint()
        if r < 0.55:
            return Le(c, k)
        if r < 0.80:
            return Ge(c, k)
        if r < 0.90:
            return And(Ge(c, k), Le(c, k + rng.randrange(3)))
        return Not(Le(c, k))

    def resets():
        return tuple(c for c in clocks if rng.random() < 0.3)

    transitions = []
    for s in states:
        for a in alphabet:
            # 0, 1, or (nondeterministically) 2 edges per (state, symbol).
            edges = rng.choice((0, 1, 1, 1, 2))
            for _ in range(edges):
                transitions.append(
                    TimedTransition.make(
                        s, rng.randrange(n), a, resets=resets(), guard=guard()
                    )
                )
    accepting = [s for s in states if rng.random() < 0.5] or [n - 1]
    return TimedBuchiAutomaton(
        alphabet=tuple(alphabet),
        states=states,
        initial=0,
        transitions=transitions,
        clocks=clocks,
        accepting=accepting,
    )


def gen_query(rng: random.Random, actions: Sequence[Any], depth: int = 2):
    """A random :mod:`repro.query` builder query over ``actions`` — the
    :func:`gen_spec` grammar walk replayed through the ``Q`` surface
    (chains with ``within``/``after``/``deadline`` modifiers, the ω
    closers, ``|`` and ``&`` composition)."""
    from ..query import Q

    def chain():
        q = None
        for _ in range(rng.randrange(1, 4)):
            lo = rng.choice((0, 0, 0, 1, 2))
            hi = lo + rng.randrange(4)
            a = rng.choice(list(actions))
            q = Q.event(a, lo, hi) if q is None else q.then(a, lo, hi)
        if rng.random() < 0.2:
            q = q.deadline(1 + rng.randrange(5), rng.choice((0, 0, 2)))
        return q

    def closed():
        q = chain()
        r = rng.random()
        if r < 0.45:
            return q.repeat()
        if r < 0.70:
            return q.once()
        return q  # bare chain: ω-coercion ("complete once, then anything")

    def go(d: int):
        r = rng.random()
        if d <= 0 or r < 0.55:
            return closed()
        parts = [go(d - 1) for _ in range(2 if rng.random() < 0.8 else 3)]
        out = parts[0]
        for p in parts[1:]:
            out = (out | p) if r < 0.85 else (out & p)
        return out

    return go(depth)


def gen_plan_queries(
    rng: random.Random, actions: Sequence[Any]
) -> Dict[str, Any]:
    """2–3 random chain queries biased toward a shared first step —
    the workload :class:`~repro.query.plan.QueryPlan` exists to fuse."""
    from ..query import Q

    acts = list(actions)
    first = rng.choice(acts)
    out: Dict[str, Any] = {}
    for i in range(rng.randrange(2, 4)):
        q = Q.event(first, 0, rng.randrange(3))
        for _ in range(rng.randrange(1, 3)):
            q = q.then(rng.choice(acts), 0, rng.randrange(1, 5))
        out[f"q{i}"] = q.repeat() if rng.random() < 0.7 else q.once()
    return out


def gen_word(
    rng: random.Random, spec: Case, alphabet: Sequence[Any]
) -> TimedWord:
    """A random monotone lasso word, biased toward the case's actions.

    Covers the edge geometries the stream layer special-cases: shift-0
    lassos (time never advances past the loop), zero gaps, and gaps
    just past every spec bound.
    """
    if isinstance(spec, TimedBuchiAutomaton):
        bias = sorted({tr.symbol for tr in spec.transitions}, key=repr)
        cap = spec._cmax + 2
    else:
        bias = sorted(actions_of(spec), key=repr)
        cap = max_bound(spec) + 2

    def sym() -> Any:
        if bias and rng.random() < 0.7:
            return rng.choice(bias)
        return rng.choice(list(alphabet))

    def gap() -> int:
        return rng.choice((0, 0, 1, 1, 2, cap - 1, cap))

    t = 0
    prefix: List[Tuple[Any, int]] = []
    for _ in range(rng.randrange(4)):
        prefix.append((sym(), t))
        t += gap()
    if rng.random() < 0.1:
        # Shift-0 lasso: the same instants forever (well-behavedness
        # violated on purpose — the paper's classical-word edge).
        pairs = [(sym(), t) for _ in range(rng.randrange(1, 3))]
        return TimedWord.lasso(prefix, pairs, shift=0)
    pairs = []
    t0 = t
    for _ in range(rng.randrange(1, 4)):
        pairs.append((sym(), t))
        t += gap()
    span = t - t0
    return TimedWord.lasso(prefix, pairs, shift=span + rng.choice((0, 0, 1, 2)))


def _events(word: TimedWord, n: int) -> List[Tuple[Any, int]]:
    return [word[i] for i in range(n)]


def _replay_len(word: TimedWord) -> int:
    return len(word.prefix) + REPLAY_LOOPS * len(word.loop)


def _horizon(word: TimedWord) -> int:
    """A horizon safely past a few loop unrollings of ``word``."""
    n = _replay_len(word)
    return max(word.time_at(i) for i in range(n)) + 1


# -- the oracle pairs --------------------------------------------------

def _check_semantics(
    spec: Case, alphabet: Tuple[Any, ...], word: TimedWord
) -> Optional[str]:
    if isinstance(spec, TimedBuchiAutomaton):
        # Raw automata have no combinator denotation; ground truth is
        # region-exact ``accepts_lasso`` itself, and the differential
        # content is the stream layer's absorbing claims below.
        direct = spec.accepts_lasso(word)
    else:
        direct = holds(spec, word, alphabet)
        report = decide(
            spec_acceptor(spec, alphabet), word, strategy="lasso-exact"
        )
        engine = report.verdict is Verdict.ACCEPT
        if direct != engine:
            return (
                f"holds()={direct} but engine lasso-exact says {report.verdict}"
            )
    # The stream layer's *absorbing* verdicts are claims about every
    # continuation, so on this word they must agree with the
    # denotational truth: REJECTED ⇒ no accepting run through the
    # consumed prefix; a green lock ⇒ every continuation accepts.
    # (Catches TBAAnalysis live/green bugs, which the compiled-vs-
    # interpreted differential shares and therefore cannot see.)
    from ..stream.monitor import StreamVerdict, TBAMonitor

    monitor = TBAMonitor(_case_tba(spec, alphabet), compiled=False)
    for s, t in _events(word, _replay_len(word)):
        monitor.ingest(s, t)
        if monitor.absorbed:
            break
    if monitor.verdict is StreamVerdict.REJECTED and direct:
        return "the word is accepted but the stream monitor absorbed into REJECTED"
    if monitor._green_locked and not direct:
        return "the word is rejected but the stream monitor green-locked ACCEPTING"
    return None


def _monitor_trace(monitor, events) -> Tuple[List[str], int, bool]:
    verdicts = []
    for s, t in events:
        verdicts.append(monitor.ingest(s, t).value)
    return verdicts, monitor.accept_visits, monitor.absorbed


#: Deterministic pair-check variations (kept out of the generator so a
#: pinned (spec, word) regression replays every variation).
F_WINDOWS: Tuple[Optional[int], ...] = (None, 0, 2)
LATENESS = 2


def _jittered(events, lateness: int):
    """A bounded out-of-order permutation: reverse each run of events
    whose times fit inside the lateness window (the worst legal
    displacement — nothing ever drops below the watermark)."""
    out: List[Tuple[Any, int]] = []
    i = 0
    while i < len(events):
        j = i + 1
        while j < len(events) and events[j][1] - events[i][1] <= lateness:
            j += 1
        out.extend(reversed(events[i:j]))
        i = j
    return out


def _final(monitor) -> Tuple[str, int, int, int]:
    return (
        monitor.verdict.value,
        monitor.accept_visits,
        monitor.events_released,
        monitor.verdict_flips,
    )


def _check_monitor(
    spec: Case, alphabet: Tuple[Any, ...], word: TimedWord
) -> Optional[str]:
    from ..stream.monitor import TBAMonitor

    tba = _case_tba(spec, alphabet)
    if not TBAMonitor(tba).compiled:
        return None  # compiled path unavailable here: nothing to compare
    events = _events(word, _replay_len(word))
    for fw in F_WINDOWS:
        cv = _monitor_trace(TBAMonitor(tba, f_window=fw), events)
        iv = _monitor_trace(TBAMonitor(tba, f_window=fw, compiled=False), events)
        if cv != iv:
            return (
                f"f_window={fw}: compiled monitor trace {cv} != "
                f"interpreted {iv}"
            )
        # The ingest_many bulk scan must match the event-at-a-time loop.
        bulk = TBAMonitor(tba, f_window=fw)
        bulk_verdict = bulk.ingest_many(events)
        if (bulk_verdict.value, bulk.accept_visits) != (cv[0][-1], cv[1]):
            return (
                f"f_window={fw}: ingest_many says "
                f"({bulk_verdict.value}, {bulk.accept_visits}) but the "
                f"per-event loop says ({cv[0][-1]}, {cv[1]})"
            )
    # Out-of-order ingestion under a lateness bound: both stepping
    # paths see the same released sequence, and the reorder machinery
    # itself must agree with directly applying the release order.
    shuffled = _jittered(events, LATENESS)
    cl = TBAMonitor(tba, lateness=LATENESS)
    il = TBAMonitor(tba, lateness=LATENESS, compiled=False)
    ct = _monitor_trace(cl, shuffled)
    it = _monitor_trace(il, shuffled)
    if ct != it:
        return (
            f"lateness={LATENESS}: compiled monitor trace {ct} != "
            f"interpreted {it}"
        )
    cl.flush()
    il.flush()
    if _final(cl) != _final(il):
        return (
            f"lateness={LATENESS}: flushed compiled state {_final(cl)} != "
            f"interpreted {_final(il)}"
        )
    # The heap releases by (time, arrival); a stable sort by time of the
    # shuffled feed is exactly that order.
    direct = TBAMonitor(tba, compiled=False)
    for s, t in sorted(shuffled, key=lambda p: p[1]):
        direct.ingest(s, t)
    if (cl.verdict, cl.accept_visits) != (direct.verdict, direct.accept_visits):
        return (
            f"lateness={LATENESS}: buffered run ends "
            f"({cl.verdict.value}, {cl.accept_visits}) but direct release-"
            f"order replay ends ({direct.verdict.value}, {direct.accept_visits})"
        )
    # Genuinely late events under late_policy="drop": splice stale
    # copies into the feed, forcing ingest_many's mid-slice resume
    # hand-off — bulk, scalar, and interpreted must all tell one story.
    stale: List[Tuple[Any, int]] = []
    for i, (s, t) in enumerate(events):
        stale.append((s, t))
        if i % 2 == 1 and t > 0:
            stale.append((events[i // 2][0], max(t - 10, 0)))
    runs = []
    for kind in ("bulk", "scalar", "interpreted"):
        m = TBAMonitor(
            tba,
            late_policy="drop",
            compiled=False if kind == "interpreted" else None,
        )
        if kind == "bulk":
            m.ingest_many(stale)
        else:
            for s, t in stale:
                m.ingest(s, t)
        runs.append((_final(m), m.late_events, m.events_ingested))
    if len(set(runs)) != 1:
        return (
            f"late-drop feed diverges: bulk {runs[0]}, scalar {runs[1]}, "
            f"interpreted {runs[2]}"
        )
    return None


def _check_strategy(
    spec: Case, alphabet: Tuple[Any, ...], word: TimedWord
) -> Optional[str]:
    tba = _case_tba(spec, alphabet)
    machine = compiled_tba(tba, allow_nondeterministic=True)
    horizon = _horizon(word)
    online = decide(machine, word, strategy="online-incremental", horizon=horizon)
    batch = decide(machine, word, strategy="lasso-exact", horizon=horizon)
    a = (online.verdict, online.f_count, online.decided_at)
    b = (batch.verdict, batch.f_count, batch.decided_at)
    if a != b:
        return f"online-incremental reports {a} but lasso-exact reports {b}"
    truth = tba.accepts_lasso(word)
    if word.shift == 0:
        # Frozen-time lassos are resolved by exact region mathematics
        # (engine.strategies.resolve_zeno): the verdict must equal the
        # language answer, and the replay must not grind to the feeder
        # cap (it is cut off at machine.tape.zeno_event_cap).
        expect = Verdict.ACCEPT if truth else Verdict.REJECT
        if batch.verdict is not expect:
            return (
                f"zeno lasso: lasso-exact reports {batch.verdict} but "
                f"accepts_lasso says {truth}"
            )
    elif batch.verdict is Verdict.REJECT and truth:
        # Machine rejection means every tracked run died — sound for
        # any TBA, so it can never contradict the language answer.
        return "lasso-exact reports REJECT but accepts_lasso says True"
    return None


def _check_shards(
    spec: Case,
    alphabet: Tuple[Any, ...],
    words: Sequence[TimedWord],
) -> Optional[str]:
    if not _case_deterministic(spec):
        return None  # raw nondeterministic TBAs are a batch-local path
    tba = _case_tba(spec, alphabet)
    # A word-scaled horizon keeps each machine run to a few dozen
    # events (the default 10k-event horizon would dominate the sweep).
    horizon = max(_horizon(w) for w in words)
    serial = decide_many(tba, words, backend="serial", horizon=horizon)
    sharded = decide_many(
        tba, words, backend="shards", workers=2, horizon=horizon
    )
    sv = [r.verdict for r in serial]
    shv = [r.verdict for r in sharded]
    if sv != shv:
        return f"serial verdicts {sv} != shards verdicts {shv}"
    return None


def _check_checkpoint(
    spec: Case, alphabet: Tuple[Any, ...], word: TimedWord
) -> Optional[str]:
    from ..stream.checkpoint import checkpoint as save_snapshot
    from ..stream.checkpoint import restore as restore_snapshot
    from ..stream.monitor import TBAMonitor

    tba = _case_tba(spec, alphabet)
    events = _events(word, _replay_len(word))
    cut = len(events) // 2
    baseline = TBAMonitor(tba, compiled=False)
    base_tail = _monitor_trace(baseline, events)
    # Save on one stepping path, restore on the other (and through a
    # JSON round-trip — snapshots must be path-neutral plain data).
    for save_compiled, load_compiled in ((False, None), (None, False)):
        first = TBAMonitor(tba, compiled=save_compiled)
        for s, t in events[:cut]:
            first.ingest(s, t)
        snap = json.loads(json.dumps(save_snapshot(first)))
        second = restore_snapshot(snap, tba=tba, compiled=load_compiled)
        tail = []
        for s, t in events[cut:]:
            tail.append(second.ingest(s, t).value)
        resumed = (
            base_tail[0][:cut] + tail,
            second.accept_visits,
            second.absorbed,
        )
        if resumed != base_tail:
            return (
                f"save(compiled={save_compiled})→restore"
                f"(compiled={load_compiled}) run {resumed} "
                f"!= uninterrupted {base_tail}"
            )
    # Checkpoint with a *non-empty reorder buffer*: out-of-order feed
    # under a lateness bound, snapshotted mid-window, must resume to
    # the same flushed state as the uninterrupted buffered run.
    shuffled = _jittered(events, LATENESS)
    whole = TBAMonitor(tba, lateness=LATENESS, compiled=False)
    for s, t in shuffled:
        whole.ingest(s, t)
    whole.flush()
    for save_compiled, load_compiled in ((False, None), (None, False)):
        first = TBAMonitor(tba, lateness=LATENESS, compiled=save_compiled)
        for s, t in shuffled[:cut]:
            first.ingest(s, t)
        snap = json.loads(json.dumps(save_snapshot(first)))
        second = restore_snapshot(snap, tba=tba, compiled=load_compiled)
        for s, t in shuffled[cut:]:
            second.ingest(s, t)
        second.flush()
        if _final(second) != _final(whole):
            return (
                f"buffered save(compiled={save_compiled})→restore"
                f"(compiled={load_compiled}) flushes to {_final(second)} "
                f"!= uninterrupted {_final(whole)}"
            )
    return None


def _check_query_roundtrip(query: Any) -> Optional[str]:
    """Text grammar vs fluent builder: ``parse(to_text(q))`` must lower
    to the identical combinator spec."""
    from ..query import parse

    text = query.to_text()
    back = parse(text)
    if back.spec() != query.spec():
        return (
            f"parse({text!r}) lowers to {to_source(back.spec())} but the "
            f"builder query lowers to {to_source(query.spec())}"
        )
    return None


def _check_query_plan(
    queries: Dict[str, Any], alphabet: Tuple[Any, ...], word: TimedWord
) -> Optional[str]:
    """Fused plan vs independent monitors: per-event ``query_verdicts``
    streams must match on both stepping paths, and the plan monitor's
    bulk scan must land where its scalar loop does."""
    from ..query import QueryPlan
    from ..stream.monitor import TBAMonitor

    plan = QueryPlan(queries, alphabet)
    events = _events(word, _replay_len(word))
    scalar_final = None
    for compiled in (None, False):
        pm = plan.monitor(compiled=compiled)
        singles = {
            name: TBAMonitor(q.tba(alphabet), compiled=compiled)
            for name, q in queries.items()
        }
        for s, t in events:
            pm.ingest(s, t)
            got = pm.query_verdicts()
            want = {name: m.ingest(s, t) for name, m in singles.items()}
            if got != want:
                return (
                    f"compiled={compiled}: after ({s!r}, {t}) the fused "
                    f"plan says { {k: v.value for k, v in got.items()} } "
                    f"but independent monitors say "
                    f"{ {k: v.value for k, v in want.items()} }"
                )
        if scalar_final is None:
            scalar_final = pm.query_verdicts()
    bulk = plan.monitor()
    bulk.ingest_many(events)
    if bulk.query_verdicts() != scalar_final:
        return (
            f"plan ingest_many ends at "
            f"{ {k: v.value for k, v in bulk.query_verdicts().items()} } "
            f"but the per-event loop ends at "
            f"{ {k: v.value for k, v in scalar_final.items()} }"
        )
    return None


def check_pair(
    pair: str,
    spec: Case,
    alphabet: Sequence[Any],
    word: TimedWord,
) -> Optional[str]:
    """Run one oracle pair on one case; ``None`` means agreement.

    ``spec`` is either a combinator :class:`Spec` or a raw
    :class:`TimedBuchiAutomaton` (the ``gen="tba"`` mode); every pair
    handles both, reading ground truth from ``accepts_lasso`` when
    there is no combinator denotation.  This is the entry point
    minimized counterexamples pin in their emitted regression tests.
    """
    alpha = tuple(alphabet)
    if pair == "semantics":
        return _check_semantics(spec, alpha, word)
    if pair == "monitor":
        return _check_monitor(spec, alpha, word)
    if pair == "strategy":
        return _check_strategy(spec, alpha, word)
    if pair == "shards":
        return _check_shards(spec, alpha, [word])
    if pair == "checkpoint":
        return _check_checkpoint(spec, alpha, word)
    raise ValueError(f"unknown pair {pair!r}; known: {PAIRS}")


# -- counterexample minimization ---------------------------------------

def _word_shrinks(word: TimedWord) -> Iterator[TimedWord]:
    prefix, pairs, shift = list(word.prefix), list(word.loop), word.shift
    for i in range(len(prefix)):
        yield TimedWord.lasso(prefix[:i] + prefix[i + 1 :], pairs, shift)
    if len(pairs) > 1:
        for i in range(len(pairs)):
            # Removing a loop pair only shrinks the span, so the old
            # shift keeps the iterations monotone.
            yield TimedWord.lasso(prefix, pairs[:i] + pairs[i + 1 :], shift)
    span = pairs[-1][1] - pairs[0][1]
    if shift > span:
        yield TimedWord.lasso(prefix, pairs, span)
    # Tighten one gap at a time (keeps monotonicity: later times drop by
    # the same amount the gap lost).
    times = [t for _, t in prefix] + [t for _, t in pairs]
    for i in range(1, len(times)):
        if times[i] > times[i - 1]:
            squeezed = times[: i] + [t - 1 for t in times[i:]]
            np = [(s, squeezed[j]) for j, (s, _) in enumerate(prefix)]
            nl = [
                (s, squeezed[len(prefix) + j]) for j, (s, _) in enumerate(pairs)
            ]
            yield TimedWord.lasso(np, nl, shift)


def _spec_shrinks(spec: Spec) -> Iterator[Spec]:
    from .combinators import Alt, Both, Eventually, Loop, RTBound, Seq

    if isinstance(spec, (Alt, Both)):
        for p in spec.parts:
            yield p
        rebuild = alt if isinstance(spec, Alt) else both
        for i, p in enumerate(spec.parts):
            for sp in _spec_shrinks(p):
                parts = spec.parts[:i] + (sp,) + spec.parts[i + 1 :]
                yield rebuild(*parts)
        return
    if isinstance(spec, (Loop, Eventually)):
        rebuild = loop if isinstance(spec, Loop) else eventually
        phases = spec.body.phases
        if len(phases) > 1:
            for i in range(len(phases)):
                yield rebuild(Seq(phases[:i] + phases[i + 1 :]))
        for i, p in enumerate(phases):
            smaller = []
            if p.lo > 0:
                smaller.append(RTBound(p.action, 0, p.hi))
            if p.hi > p.lo:
                smaller.append(RTBound(p.action, p.lo, p.hi - 1))
            for sp in smaller:
                yield rebuild(Seq(phases[:i] + (sp,) + phases[i + 1 :]))


def _tba_shrinks(tba: TimedBuchiAutomaton) -> Iterator[TimedBuchiAutomaton]:
    """Smaller raw automata: drop a transition, erase a guard, clear a
    reset set, drop an accepting state (the structural analogues of the
    spec shrinks)."""

    def rebuild(transitions, accepting):
        return TimedBuchiAutomaton(
            alphabet=tuple(sorted(tba.alphabet, key=repr)),
            states=tuple(sorted(tba.states, key=repr)),
            initial=tba.initial,
            transitions=transitions,
            clocks=tba.clocks,
            accepting=accepting,
        )

    trs = tba.transitions
    for i in range(len(trs)):
        yield rebuild(trs[:i] + trs[i + 1 :], tba.accepting)
    for i, tr in enumerate(trs):
        if not isinstance(tr.guard, TrueConstraint):
            eased = TimedTransition.make(
                tr.source, tr.target, tr.symbol, resets=tr.resets
            )
            yield rebuild(trs[:i] + [eased] + trs[i + 1 :], tba.accepting)
        if tr.resets:
            bare = TimedTransition(
                tr.source, tr.target, tr.symbol, frozenset(), tr.guard
            )
            yield rebuild(trs[:i] + [bare] + trs[i + 1 :], tba.accepting)
    if len(tba.accepting) > 1:
        for s in sorted(tba.accepting, key=repr):
            yield rebuild(trs, tba.accepting - {s})


def minimize(
    pair: str,
    spec: Case,
    alphabet: Sequence[Any],
    word: TimedWord,
) -> Tuple[Case, TimedWord, str]:
    """Greedily shrink a disagreeing case while it still disagrees."""

    def fails(s: Case, w: TimedWord) -> Optional[str]:
        try:
            return check_pair(pair, s, alphabet, w)
        except Exception:  # a shrink that crashes is a different case
            return None

    case_shrinks = (
        _tba_shrinks if isinstance(spec, TimedBuchiAutomaton) else _spec_shrinks
    )
    detail = fails(spec, word)
    assert detail is not None, "minimize() needs a disagreeing case"
    changed = True
    while changed:
        changed = False
        for w in _word_shrinks(word):
            d = fails(spec, w)
            if d is not None:
                word, detail, changed = w, d, True
                break
        if changed:
            continue
        for s in case_shrinks(spec):
            d = fails(s, word)
            if d is not None:
                spec, detail, changed = s, d, True
                break
    return spec, word, detail


def _guard_source(guard: Any) -> str:
    if isinstance(guard, TrueConstraint):
        return "TrueConstraint()"
    if isinstance(guard, Le):
        return f"Le({guard.clock!r}, {guard.bound!r})"
    if isinstance(guard, Ge):
        return f"Ge({guard.clock!r}, {guard.bound!r})"
    if isinstance(guard, Not):
        return f"Not({_guard_source(guard.inner)})"
    if isinstance(guard, And):
        return f"And({_guard_source(guard.left)}, {_guard_source(guard.right)})"
    raise ValueError(f"unknown guard {guard!r}")


def case_source(case: Case, indent: str = "") -> str:
    """Reconstructible source for a case (spec combinators, or a
    ``TimedBuchiAutomaton(...)`` literal for raw automata)."""
    if not isinstance(case, TimedBuchiAutomaton):
        return to_source(case)
    pad = indent + "    "
    lines = [f"{pad}TimedTransition.make({tr.source!r}, {tr.target!r}, "
             f"{tr.symbol!r}, resets={tuple(sorted(tr.resets))!r}, "
             f"guard={_guard_source(tr.guard)}),"
             for tr in case.transitions]
    body = "\n".join(lines)
    return (
        f"TimedBuchiAutomaton(\n"
        f"{indent}    alphabet={tuple(sorted(case.alphabet, key=repr))!r},\n"
        f"{indent}    states={tuple(sorted(case.states, key=repr))!r},\n"
        f"{indent}    initial={case.initial!r},\n"
        f"{indent}    transitions=[\n{body}\n{indent}    ],\n"
        f"{indent}    clocks={case.clocks!r},\n"
        f"{indent}    accepting={tuple(sorted(case.accepting, key=repr))!r},\n"
        f"{indent})"
    )


def regression_source(
    pair: str,
    spec: Case,
    alphabet: Sequence[Any],
    word: TimedWord,
) -> str:
    """A ready-to-paste pytest function pinning the (fixed) case."""
    name = f"test_conformance_{pair}_regression"
    return (
        f"def {name}():\n"
        f"    # minimized by repro.spec.conformance\n"
        f"    spec = {case_source(spec, indent='    ')}\n"
        f"    word = TimedWord.lasso(\n"
        f"        {list(word.prefix)!r},\n"
        f"        {list(word.loop)!r},\n"
        f"        shift={word.shift},\n"
        f"    )\n"
        f"    assert check_pair({pair!r}, spec, {tuple(alphabet)!r}, word) is None\n"
    )


# -- the sweep ---------------------------------------------------------

@dataclass
class SweepStats:
    cases: int = 0
    checks: Dict[str, int] = field(default_factory=dict)
    disagreements: List[Disagreement] = field(default_factory=list)


def run(
    seed: int = 0,
    cases: int = 200,
    pairs: Sequence[str] = PAIRS,
    words_per_case: int = 3,
    depth: int = 2,
    gen: str = "spec",
    log: Callable[[str], None] = lambda line: None,
) -> SweepStats:
    """The conformance sweep: ``cases`` random cases, each fuzzed with
    ``words_per_case`` words against every pair in ``pairs``.

    ``gen="spec"`` draws combinator specs (:func:`gen_spec`);
    ``gen="tba"`` draws raw automata (:func:`gen_tba`) through the same
    oracle pairs and minimizer; ``gen="query"`` draws builder queries
    (:func:`gen_query`), runs their lowered specs through every pair,
    and adds the ``query-roundtrip`` / ``query-plan`` differentials.
    """
    for p in pairs:
        if p not in PAIRS:
            raise ValueError(f"unknown pair {p!r}; known: {PAIRS}")
    if gen not in GENS:
        raise ValueError(f"unknown gen {gen!r}; known: {GENS}")
    rng = random.Random(seed)
    stats = SweepStats()
    symbols = ["a", "b", "c", "d"]
    for case in range(cases):
        stats.cases += 1
        actions = symbols[: rng.randrange(1, 4)]
        # Sometimes widen the alphabet past the actions: symbols the
        # spec never mentions still have to be stepped correctly.
        alphabet = tuple(symbols[: len(actions) + rng.randrange(2)]) or ("a",)
        query = None
        if gen == "tba":
            spec: Case = gen_tba(rng, alphabet)
        elif gen == "query":
            query = gen_query(rng, actions, depth=depth)
            spec = query.spec()
        else:
            spec = gen_spec(rng, actions, depth=depth)
        words = [gen_word(rng, spec, alphabet) for _ in range(words_per_case)]
        if query is not None:
            # Query-layer differentials ride along on every case; they
            # have no word/spec shrink space, so disagreements are
            # recorded unminimized.
            stats.checks["query-roundtrip"] = (
                stats.checks.get("query-roundtrip", 0) + 1
            )
            detail = _check_query_roundtrip(query)
            if detail is not None:
                log(f"case {case}: DISAGREEMENT query-roundtrip")
                stats.disagreements.append(
                    Disagreement(
                        "query-roundtrip", spec, alphabet, words[0], detail
                    )
                )
            pqs = gen_plan_queries(rng, actions)
            pword = gen_word(
                rng, alt(*(q.spec() for q in pqs.values())), alphabet
            )
            stats.checks["query-plan"] = stats.checks.get("query-plan", 0) + 1
            detail = _check_query_plan(pqs, alphabet, pword)
            if detail is not None:
                log(f"case {case}: DISAGREEMENT query-plan")
                stats.disagreements.append(
                    Disagreement(
                        "query-plan",
                        alt(*(q.spec() for q in pqs.values())),
                        alphabet,
                        pword,
                        detail,
                    )
                )
        for pair in pairs:
            if pair == "shards":
                # One pooled batch per case (the pool is persistent, so
                # this stays cheap across the sweep).
                stats.checks[pair] = stats.checks.get(pair, 0) + 1
                detail = _check_shards(spec, alphabet, words)
                if detail is not None:
                    log(f"case {case}: DISAGREEMENT {pair}, minimizing…")
                    # Minimize against whichever single word still
                    # disagrees on its own; fall back to the raw case.
                    culprit = next(
                        (w for w in words if check_pair(pair, spec, alphabet, w)),
                        None,
                    )
                    if culprit is not None:
                        mspec, mword, mdetail = minimize(
                            pair, spec, alphabet, culprit
                        )
                    else:
                        mspec, mword, mdetail = spec, words[0], detail
                    stats.disagreements.append(
                        Disagreement(pair, mspec, alphabet, mword, mdetail)
                    )
                continue
            for word in words:
                stats.checks[pair] = stats.checks.get(pair, 0) + 1
                detail = check_pair(pair, spec, alphabet, word)
                if detail is not None:
                    log(f"case {case}: DISAGREEMENT {pair}, minimizing…")
                    mspec, mword, mdetail = minimize(pair, spec, alphabet, word)
                    stats.disagreements.append(
                        Disagreement(pair, mspec, alphabet, mword, mdetail)
                    )
                    break
    return stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spec.conformance",
        description="Differential conformance fuzzing across the repo's "
        "decision paths.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument(
        "--pairs",
        default=",".join(PAIRS),
        help=f"comma-separated subset of {','.join(PAIRS)}",
    )
    parser.add_argument("--words-per-case", type=int, default=3)
    parser.add_argument(
        "--depth",
        type=int,
        default=2,
        help="grammar nesting depth for generated specs (default 2)",
    )
    parser.add_argument(
        "--gen",
        choices=GENS,
        default="spec",
        help="case generator: combinator specs (default) or raw random TBAs",
    )
    args = parser.parse_args(argv)
    pairs = tuple(p for p in args.pairs.split(",") if p)
    stats = run(
        seed=args.seed,
        cases=args.cases,
        pairs=pairs,
        words_per_case=args.words_per_case,
        depth=args.depth,
        gen=args.gen,
        log=lambda line: print(line, file=sys.stderr),
    )
    extras = tuple(k for k in stats.checks if k not in pairs)
    for pair in tuple(pairs) + extras:
        bad = sum(1 for d in stats.disagreements if d.pair == pair)
        print(
            f"{pair:16s} {stats.checks.get(pair, 0):6d} checks  "
            f"{bad} disagreement(s)"
        )
    for d in stats.disagreements:
        print()
        print(d.describe())
    print(
        f"\n{stats.cases} cases, seed {args.seed}: "
        + (
            f"{len(stats.disagreements)} DISAGREEMENT(S)"
            if stats.disagreements
            else "all decision paths agree"
        )
    )
    return 1 if stats.disagreements else 0


if __name__ == "__main__":
    raise SystemExit(main())
