"""Timer-bound spec combinators — the TLA+ ``RealTime`` reduction.

Lamport's ``RealTime`` module (SNIPPETS.md, Snippets 2–3) reduces
real-time specifications to three bound shapes on actions: ``Timer``
(a clock tracking when an action last fired), ``MinTime(D)`` (the
action may not fire before D has elapsed) and ``MaxTime(E)`` (it must
fire before E elapses).  De Boer et al.'s timed correctness logic
(PAPERS.md) lands on the same normal form.  This module is that normal
form as a small combinator algebra over the paper's timed ω-words
(Definition 3.2), compiled onto the acceptor substrate the engine and
stream runtime already judge (Definitions 3.4 / §4.1):

Phase layer (finite timed patterns)
    * :func:`rt_bound` ``(action, min_delay, max_delay)`` — one timed
      step: the *next* occurrence of ``action`` must arrive with
      elapsed time in ``[min_delay, max_delay]`` since the phase
      began; other symbols may pass freely while the budget lasts, but
      any event past ``max_delay`` (or an early/late ``action``) kills
      the run.  ``min_delay`` is ``MinTime``, ``max_delay`` is
      ``MaxTime``, and the implicit phase clock is the ``Timer``.
    * :func:`seq` — sequencing: each completed phase starts the next
      one's timer (clock reset on the action edge).

ω layer (timed ω-languages)
    * :func:`loop` — iteration: the phase sequence completes again and
      again, forever (a Büchi obligation — stalling forever mid-chain
      rejects).
    * :func:`eventually` — single-shot: complete the chain once, then
      anything goes (the shape of a §4.1 firm deadline).
    * :func:`alt` — disjunction (automaton union; nondeterministic).
    * :func:`both` — conjunction *with fairness*: every conjunct's
      Büchi obligation must be met infinitely often, enforced by the
      round-robin fairness counter of the product construction in
      :mod:`repro.spec.compile`.

Every spec is a frozen, hashable dataclass; :func:`to_source` renders
it back to constructor syntax (what the conformance harness's
counterexample minimizer emits into regression tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple, Union

__all__ = [
    "Spec",
    "PhaseSpec",
    "RTBound",
    "Seq",
    "Loop",
    "Eventually",
    "Alt",
    "Both",
    "rt_bound",
    "seq",
    "loop",
    "eventually",
    "alt",
    "both",
    "phases_of",
    "as_omega",
    "actions_of",
    "is_deterministic_spec",
    "max_bound",
    "to_source",
]


class Spec:
    """Base class of ω-layer specs (denoting timed ω-languages)."""

    __slots__ = ()


class PhaseSpec:
    """Base class of phase-layer specs (finite timed patterns)."""

    __slots__ = ()


@dataclass(frozen=True)
class RTBound(PhaseSpec):
    """One timed step: next ``action`` in ``[lo, hi]`` chronons.

    ``lo`` is the TLA+ ``MinTime`` bound, ``hi`` the ``MaxTime`` bound,
    both measured on the implicit phase timer (reset when the phase is
    entered).  While waiting, other symbols pass only as long as the
    timer has not exceeded ``hi``.
    """

    action: Any
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"min_delay must be >= 0, got {self.lo}")
        if self.hi < self.lo:
            raise ValueError(
                f"max_delay must be >= min_delay, got [{self.lo}, {self.hi}]"
            )


@dataclass(frozen=True)
class Seq(PhaseSpec):
    """A sequence of timed steps, each starting the next one's timer."""

    phases: Tuple[RTBound, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("seq needs at least one phase")
        for p in self.phases:
            if not isinstance(p, RTBound):
                raise TypeError(f"seq phases must be rt_bound specs, got {p!r}")


@dataclass(frozen=True)
class Loop(Spec):
    """ω-iteration: the body chain completes infinitely often."""

    body: Seq


@dataclass(frozen=True)
class Eventually(Spec):
    """Single-shot: the body chain completes once; then anything."""

    body: Seq


@dataclass(frozen=True)
class Alt(Spec):
    """Disjunction: some component's language contains the word."""

    parts: Tuple[Spec, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("alt needs at least two components")


@dataclass(frozen=True)
class Both(Spec):
    """Conjunction with fairness: every component's Büchi obligation
    recurs (round-robin counter in the compiled product)."""

    parts: Tuple[Spec, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("both needs at least two components")


# -- constructors ------------------------------------------------------

def rt_bound(action: Any, min_delay: int = 0, max_delay: int = 0) -> RTBound:
    """``MinTime(min_delay)`` ∧ ``MaxTime(max_delay)`` on ``action``."""
    return RTBound(action, int(min_delay), int(max_delay))


def seq(*specs: Union[RTBound, Seq]) -> Seq:
    """Sequence phase specs (nested sequences are flattened)."""
    if not specs:
        raise ValueError(
            "seq() needs at least one phase spec — an empty sequence "
            "has no denotation"
        )
    phases = []
    for s in specs:
        if isinstance(s, Seq):
            phases.extend(s.phases)
        elif isinstance(s, RTBound):
            phases.append(s)
        else:
            raise TypeError(f"seq takes rt_bound/seq specs, got {s!r}")
    return Seq(tuple(phases))


def loop(spec: Union[RTBound, Seq]) -> Loop:
    """The body completes infinitely often (Büchi iteration)."""
    return Loop(seq(spec))


def eventually(spec: Union[RTBound, Seq]) -> Eventually:
    """The body completes once; every continuation is then accepted."""
    return Eventually(seq(spec))


def as_omega(spec: Union[Spec, RTBound, Seq]) -> Spec:
    """Coerce a phase spec to the ω layer (bare phases mean
    :func:`eventually` — complete once, then anything)."""
    if isinstance(spec, Spec):
        return spec
    if isinstance(spec, (RTBound, Seq)):
        return eventually(spec)
    raise TypeError(f"not a spec: {spec!r}")


def alt(*specs: Union[Spec, RTBound, Seq]) -> Spec:
    """Disjunction of ω-specs (phase specs coerce via :func:`as_omega`)."""
    if not specs:
        raise ValueError(
            "alt() needs at least one spec — an empty disjunction "
            "denotes the empty language, which no acceptor here models"
        )
    parts = tuple(as_omega(s) for s in specs)
    if len(parts) == 1:
        return parts[0]
    return Alt(parts)


def both(*specs: Union[Spec, RTBound, Seq]) -> Spec:
    """Fair conjunction of ω-specs (phase specs coerce via
    :func:`as_omega`)."""
    if not specs:
        raise ValueError(
            "both() needs at least one spec — an empty conjunction "
            "denotes everything, which is not a meaningful obligation"
        )
    parts = tuple(as_omega(s) for s in specs)
    if len(parts) == 1:
        return parts[0]
    return Both(parts)


# -- structural queries ------------------------------------------------

def phases_of(spec: Union[RTBound, Seq]) -> Tuple[RTBound, ...]:
    """The flattened phase chain of a phase-layer spec."""
    if isinstance(spec, RTBound):
        return (spec,)
    if isinstance(spec, Seq):
        return spec.phases
    raise TypeError(f"not a phase spec: {spec!r}")


def actions_of(spec: Union[Spec, PhaseSpec]) -> FrozenSet[Any]:
    """Every action symbol the spec mentions."""
    if isinstance(spec, RTBound):
        return frozenset({spec.action})
    if isinstance(spec, Seq):
        return frozenset(p.action for p in spec.phases)
    if isinstance(spec, (Loop, Eventually)):
        return actions_of(spec.body)
    if isinstance(spec, (Alt, Both)):
        out: FrozenSet[Any] = frozenset()
        for p in spec.parts:
            out |= actions_of(p)
        return out
    raise TypeError(f"not a spec: {spec!r}")


def is_deterministic_spec(spec: Union[Spec, PhaseSpec]) -> bool:
    """Whether the compiled TBA is deterministic (no :func:`alt`)."""
    if isinstance(spec, (RTBound, Seq, Loop, Eventually)):
        return True
    if isinstance(spec, Both):
        return all(is_deterministic_spec(p) for p in spec.parts)
    if isinstance(spec, Alt):
        return False
    raise TypeError(f"not a spec: {spec!r}")


def max_bound(spec: Union[Spec, PhaseSpec]) -> int:
    """The largest ``max_delay`` anywhere in the spec (region cap)."""
    if isinstance(spec, RTBound):
        return spec.hi
    if isinstance(spec, Seq):
        return max(p.hi for p in spec.phases)
    if isinstance(spec, (Loop, Eventually)):
        return max_bound(spec.body)
    if isinstance(spec, (Alt, Both)):
        return max(max_bound(p) for p in spec.parts)
    raise TypeError(f"not a spec: {spec!r}")


def to_source(spec: Union[Spec, PhaseSpec]) -> str:
    """Constructor syntax for ``spec`` (used by emitted regression
    tests; ``eval`` against this module's namespace rebuilds it)."""
    if isinstance(spec, RTBound):
        return f"rt_bound({spec.action!r}, {spec.lo}, {spec.hi})"
    if isinstance(spec, Seq):
        return "seq(" + ", ".join(to_source(p) for p in spec.phases) + ")"
    if isinstance(spec, Loop):
        return f"loop({to_source(spec.body)})"
    if isinstance(spec, Eventually):
        return f"eventually({to_source(spec.body)})"
    if isinstance(spec, Alt):
        return "alt(" + ", ".join(to_source(p) for p in spec.parts) + ")"
    if isinstance(spec, Both):
        return "both(" + ", ".join(to_source(p) for p in spec.parts) + ")"
    raise TypeError(f"not a spec: {spec!r}")
