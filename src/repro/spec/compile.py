"""Compiling spec combinators onto the acceptor substrate.

A phase chain becomes a single-clock deterministic TBA: one waiting
state per phase, the phase timer as the clock (reset on every action
edge), ``Le(x, hi)`` self-loops for the budgeted wait and
``Ge(x, lo) ∧ Le(x, hi)`` action edges — exactly the TLA+
``Timer``/``MinTime``/``MaxTime`` triple as automaton structure.

The Büchi obligation of :class:`~repro.spec.combinators.Loop` needs
one care point: the chain-completion state must be *transient* (an
accepting state you can sit in forever would accept stalled streams).
Completion therefore targets an accepting twin of the first waiting
state which is left again on the very next event.
:class:`~repro.spec.combinators.Eventually` instead targets an
absorbing all-accepting state (which the stream layer's analysis
recognizes as *green*: the verdict locks to ACCEPTING).

:class:`~repro.spec.combinators.Alt` is automaton union (fresh initial
state, component clocks renamed apart — nondeterministic).
:class:`~repro.spec.combinators.Both` is the product construction with
the round-robin *fairness counter* of generalized-Büchi
degeneralization: the counter waits on component j until j's own
accepting set is visited, wraps after the last component, and only the
wrap states are accepting — so every conjunct's obligation recurs on
any accepting run.

Everything downstream consumes the result as-is: raw TBAs feed
``engine.decide`` / ``decide_many`` (any backend) and
:class:`~repro.stream.monitor.TBAMonitor`; :func:`spec_acceptor` wraps
exact lasso acceptance for the batch engine; :func:`to_deadline_spec`
bridges single-shot bounds onto the §4.1 deadline classes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..automata.timed import TimedBuchiAutomaton, TimedTransition
from ..deadlines.spec import DeadlineKind, DeadlineSpec, StepUsefulness
from ..engine.strategies import FunctionAcceptor
from ..engine.verdict import DecisionReport, Verdict
from ..kernel.clock import (
    And,
    ClockConstraint,
    Ge,
    Le,
    Not,
    TrueConstraint,
)
from .combinators import (
    Alt,
    Both,
    Eventually,
    Loop,
    PhaseSpec,
    RTBound,
    Seq,
    Spec,
    actions_of,
    as_omega,
    phases_of,
    to_source,
)

__all__ = [
    "to_tba",
    "spec_acceptor",
    "spec_monitor",
    "to_deadline_spec",
    "from_deadline_spec",
]


# -- guard helpers -----------------------------------------------------

def _rename_guard(guard: ClockConstraint, mapping: Dict[str, str]) -> ClockConstraint:
    if isinstance(guard, TrueConstraint):
        return guard
    if isinstance(guard, Le):
        return Le(mapping[guard.clock], guard.bound)
    if isinstance(guard, Ge):
        return Ge(mapping[guard.clock], guard.bound)
    if isinstance(guard, Not):
        return Not(_rename_guard(guard.inner, mapping))
    if isinstance(guard, And):
        return And(
            _rename_guard(guard.left, mapping),
            _rename_guard(guard.right, mapping),
        )
    raise TypeError(f"cannot rename clocks in {guard!r}")


def _and_fold(guards: Iterable[ClockConstraint]) -> ClockConstraint:
    out: Optional[ClockConstraint] = None
    for g in guards:
        if isinstance(g, TrueConstraint):
            continue
        out = g if out is None else And(out, g)
    return out if out is not None else TrueConstraint()


def _rename_clocks(tba: TimedBuchiAutomaton, prefix: str) -> TimedBuchiAutomaton:
    """A copy of ``tba`` with every clock renamed ``prefix + name``."""
    mapping = {c: f"{prefix}{c}" for c in tba.clocks}
    transitions = [
        TimedTransition(
            tr.source,
            tr.target,
            tr.symbol,
            frozenset(mapping[c] for c in tr.resets),
            _rename_guard(tr.guard, mapping),
        )
        for tr in tba.transitions
    ]
    return TimedBuchiAutomaton(
        alphabet=tba.alphabet,
        states=tba.states,
        initial=tba.initial,
        transitions=transitions,
        clocks=mapping.values(),
        accepting=tba.accepting,
    )


# -- phase chains ------------------------------------------------------

def _chain_tba(
    phases: Tuple[RTBound, ...],
    alphabet: Tuple[Any, ...],
    looped: bool,
    clock: str = "x",
) -> TimedBuchiAutomaton:
    n = len(phases)
    wait = [("w", i) for i in range(n)]
    done = ("h",) if looped else ("acc",)
    states: List[Any] = wait + [done]
    transitions: List[TimedTransition] = []

    def action_edge(source: Any, i: int) -> TimedTransition:
        p = phases[i]
        target = wait[i + 1] if i + 1 < n else done
        return TimedTransition(
            source,
            target,
            p.action,
            frozenset({clock}),
            And(Ge(clock, p.lo), Le(clock, p.hi)),
        )

    def wait_edges(source: Any, i: int, target: Any) -> List[TimedTransition]:
        p = phases[i]
        return [
            TimedTransition(source, target, b, frozenset(), Le(clock, p.hi))
            for b in alphabet
            if b != p.action
        ]

    for i in range(n):
        transitions.append(action_edge(wait[i], i))
        transitions.extend(wait_edges(wait[i], i, wait[i]))
    if looped:
        # The accepting twin of ("w", 0): entered exactly once per
        # completion, left again on the next event.
        transitions.append(action_edge(done, 0))
        transitions.extend(wait_edges(done, 0, wait[0]))
    else:
        transitions.extend(
            TimedTransition(done, done, b, frozenset(), TrueConstraint())
            for b in alphabet
        )
    return TimedBuchiAutomaton(
        alphabet=alphabet,
        states=states,
        initial=wait[0],
        transitions=transitions,
        clocks=(clock,),
        accepting={done},
    )


# -- union (alt) -------------------------------------------------------

def _union_tba(
    parts: List[TimedBuchiAutomaton], alphabet: Tuple[Any, ...]
) -> TimedBuchiAutomaton:
    renamed = [_rename_clocks(t, f"a{i}.") for i, t in enumerate(parts)]
    initial = ("alt",)
    states: List[Any] = [initial]
    transitions: List[TimedTransition] = []
    accepting: List[Any] = []
    clocks: List[str] = []
    for i, t in enumerate(renamed):
        clocks.extend(t.clocks)
        states.extend((i, s) for s in t.states)
        accepting.extend((i, s) for s in t.accepting)
        for tr in t.transitions:
            transitions.append(
                TimedTransition(
                    (i, tr.source), (i, tr.target), tr.symbol, tr.resets, tr.guard
                )
            )
            if tr.source == t.initial:
                # The fresh start also offers the component's initial
                # moves (the standard ε-free NFA union).
                transitions.append(
                    TimedTransition(
                        initial, (i, tr.target), tr.symbol, tr.resets, tr.guard
                    )
                )
    return TimedBuchiAutomaton(
        alphabet=alphabet,
        states=states,
        initial=initial,
        transitions=transitions,
        clocks=clocks,
        accepting=accepting,
    )


# -- fair product (both) -----------------------------------------------

def _product_tba(
    parts: List[TimedBuchiAutomaton], alphabet: Tuple[Any, ...]
) -> TimedBuchiAutomaton:
    renamed = [_rename_clocks(t, f"b{i}.") for i, t in enumerate(parts)]
    m = len(renamed)
    clocks: List[str] = [c for t in renamed for c in t.clocks]
    initial = (tuple(t.initial for t in renamed), 0)
    states: List[Any] = [initial]
    seen = {initial}
    transitions: List[TimedTransition] = []
    frontier = [initial]
    while frontier:
        svec, j = frontier.pop()
        for a in alphabet:
            options = [
                t._by_source.get((svec[i], a), ()) for i, t in enumerate(renamed)
            ]
            if any(not opts for opts in options):
                continue  # some component has no move: the product dies
            combos: List[Tuple[TimedTransition, ...]] = [()]
            for opts in options:
                combos = [c + (tr,) for c in combos for tr in opts]
            for combo in combos:
                tvec = tuple(tr.target for tr in combo)
                # Fairness counter: wait on component jj; advance when
                # its own accepting set is entered; only the full wrap
                # (j == m) is accepting.
                jj = 0 if j == m else j
                if tvec[jj] in renamed[jj].accepting:
                    nj = jj + 1
                    nj = m if nj == m else nj
                else:
                    nj = jj
                target = (tvec, nj)
                if target not in seen:
                    seen.add(target)
                    states.append(target)
                    frontier.append(target)
                transitions.append(
                    TimedTransition(
                        (svec, j),
                        target,
                        a,
                        frozenset().union(*(tr.resets for tr in combo)),
                        _and_fold(tr.guard for tr in combo),
                    )
                )
    return TimedBuchiAutomaton(
        alphabet=alphabet,
        states=states,
        initial=initial,
        transitions=transitions,
        clocks=clocks,
        accepting=[s for s in states if s[1] == m],
    )


# -- entry points ------------------------------------------------------

def _build_tba(spec: Spec, alphabet: Tuple[Any, ...]) -> TimedBuchiAutomaton:
    if isinstance(spec, Loop):
        return _chain_tba(spec.body.phases, alphabet, looped=True)
    if isinstance(spec, Eventually):
        return _chain_tba(spec.body.phases, alphabet, looped=False)
    if isinstance(spec, Alt):
        return _union_tba(
            [_build_tba(p, alphabet) for p in spec.parts], alphabet
        )
    if isinstance(spec, Both):
        return _product_tba(
            [_build_tba(p, alphabet) for p in spec.parts], alphabet
        )
    raise TypeError(f"not an ω-spec: {spec!r}")


@lru_cache(maxsize=512)
def _to_tba_cached(spec: Spec, alphabet: Tuple[Any, ...]) -> TimedBuchiAutomaton:
    return _build_tba(spec, alphabet)


def to_tba(spec: Any, alphabet: Iterable[Any]) -> TimedBuchiAutomaton:
    """Compile a spec over ``alphabet`` into a timed Büchi automaton.

    Memoized per (spec, alphabet) — repeated compilations return the
    *same* automaton object, so the stream layer's per-automaton
    analysis and compiled-table caches are shared too.
    """
    omega = as_omega(spec)
    alpha = tuple(sorted(set(alphabet), key=repr))
    missing = actions_of(omega) - set(alpha)
    if missing:
        raise ValueError(
            f"spec actions {sorted(missing, key=repr)} not in alphabet {alpha}"
        )
    return _to_tba_cached(omega, alpha)


def spec_acceptor(spec: Any, alphabet: Iterable[Any]) -> FunctionAcceptor:
    """An engine-consumable acceptor judging exact lasso acceptance.

    Wraps :meth:`TimedBuchiAutomaton.accepts_lasso` of the compiled
    automaton in a :class:`~repro.engine.strategies.FunctionAcceptor`,
    so ``engine.decide``/``decide_many`` judge the spec's language
    exactly (nondeterministic :func:`~repro.spec.combinators.alt`
    included).
    """
    tba = to_tba(spec, alphabet)
    source = to_source(as_omega(spec))

    def fn(word: Any, horizon: int) -> DecisionReport:
        ok = tba.accepts_lasso(word)
        return DecisionReport(
            verdict=Verdict.ACCEPT if ok else Verdict.REJECT,
            horizon=horizon,
            evidence={"spec": source},
        )

    return FunctionAcceptor(fn, name=f"spec:{source}")


def spec_monitor(spec: Any, alphabet: Iterable[Any], **kwargs: Any):
    """An online :class:`~repro.stream.monitor.TBAMonitor` for the spec
    (keyword arguments pass through: lateness, f_window, compiled, …)."""
    from ..stream.monitor import TBAMonitor

    return TBAMonitor(to_tba(spec, alphabet), **kwargs)


# -- §4.1 deadline bridge ----------------------------------------------

def to_deadline_spec(
    bound: RTBound,
    *,
    grace: int = 0,
    max_value: int = 1,
    min_acceptable: int = 1,
) -> DeadlineSpec:
    """A single-shot bound as a §4.1 deadline class.

    ``rt_bound(a, 0, E)`` is the firm deadline ``t_d = E + 1`` (§4.1
    (ii): completion at any time ``t < t_d`` — i.e. ``t ≤ E`` — counts).
    With ``grace > 0`` it becomes the soft class (iii): the hard part
    of the budget ends at ``t_d = E − grace`` and a
    :class:`~repro.deadlines.spec.StepUsefulness` holds usefulness at
    ``max`` through the remaining ``grace`` chronons, so the oracle
    accepts completions up to ``t_d + grace = E`` — exactly the bound.
    Either way, the §4.1 oracle and the timer bound accept the same
    completion times (:func:`from_deadline_spec` is the inverse).

    A positive ``min_delay`` is a ``MinTime`` lower bound; §4.1 has no
    too-early notion, so it cannot be bridged.
    """
    if not isinstance(bound, RTBound):
        raise TypeError(f"to_deadline_spec takes an rt_bound, got {bound!r}")
    if bound.lo > 0:
        raise ValueError(
            "MinTime (min_delay > 0) has no §4.1 deadline class: the "
            "paper's deadlines only bound lateness, not earliness"
        )
    if grace:
        if grace >= bound.hi:
            raise ValueError(
                f"grace ({grace}) must be smaller than the max_delay "
                f"({bound.hi}) — the §4.1 soft class needs t_d > 0"
            )
        t_d = bound.hi - grace
        return DeadlineSpec(
            kind=DeadlineKind.SOFT,
            t_d=t_d,
            usefulness=StepUsefulness(
                max_value=max(max_value, min_acceptable), t_d=t_d, grace=grace
            ),
            min_acceptable=min_acceptable,
        )
    return DeadlineSpec(kind=DeadlineKind.FIRM, t_d=bound.hi + 1)


def from_deadline_spec(dspec: DeadlineSpec, action: Any = "done") -> RTBound:
    """The timer bound equivalent to a firm (or step-soft) deadline.

    Inverse of :func:`to_deadline_spec` on the classes it covers: a
    completion event satisfies the returned bound iff the §4.1 oracle
    accepts the completion time.
    """
    if dspec.kind is DeadlineKind.FIRM:
        return RTBound(action, 0, dspec.t_d - 1)
    if dspec.kind is DeadlineKind.SOFT and isinstance(
        dspec.usefulness, StepUsefulness
    ):
        if dspec.usefulness.max_value >= dspec.min_acceptable:
            # u stays at max through t_d + grace, so completions up to
            # and including that instant meet the acceptable limit.
            return RTBound(action, 0, dspec.t_d + dspec.usefulness.grace)
        return RTBound(action, 0, dspec.t_d - 1)
    raise ValueError(
        f"no timer-bound equivalent for {dspec.kind.value} deadline with "
        f"{type(dspec.usefulness).__name__} usefulness"
    )
