"""Direct denotational semantics of the spec combinators.

:func:`holds` decides spec satisfaction on lasso timed words *without
touching any automaton*: a compositional evaluator over the spec AST
(disjunction = OR of components, conjunction = AND, phase chains = a
greedy walk).  It is deliberately a second, structurally different
implementation of the same language — the conformance harness
(:mod:`repro.spec.conformance`) differentially tests it against the
compiled-TBA route through the engine and the stream runtime, so a bug
in either side surfaces as a verdict disagreement.

Why a greedy walk is complete here: a phase waits for the *first*
occurrence of its action (non-action symbols merely pass, budget
permitting), so the phase walker is deterministic — there is exactly
one candidate run per phase chain.  Nondeterminism only enters through
:func:`~repro.spec.combinators.alt`, whose semantics is the plain OR
over components, each again deterministic.

Deciding the ω-obligations on a lasso uses the same discrete region
argument as :mod:`repro.automata.timed`: guards only distinguish
elapsed times up to the largest bound, so the walker state
``(phase index, capped elapsed)`` observed at loop boundaries must
eventually repeat, and everything between two equal boundary states
recurs forever.  :class:`~repro.spec.combinators.Loop` accepts iff a
chain completion happens inside that recurring window;
:class:`~repro.spec.combinators.Eventually` accepts iff a completion
happens before the walk dies or provably never completes.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple, Union

from ..words.timedword import TimedWord
from .combinators import (
    Alt,
    Both,
    Eventually,
    Loop,
    PhaseSpec,
    RTBound,
    Spec,
    as_omega,
)

__all__ = ["holds"]

#: Safety valve on walker steps (far above any boundary-state cycle a
#: generated spec/word pair can need; a hit is a bug, not a timeout).
MAX_STEPS = 1_000_000


def _walk_chain(
    phases: Tuple[RTBound, ...],
    word: TimedWord,
    alphabet: FrozenSet[Any],
    looped: bool,
) -> bool:
    """The unique run of a phase chain over a lasso word, judged.

    Returns Büchi acceptance for ``looped=True`` (completions recur)
    and reachability for ``looped=False`` (some completion happens).
    """
    p0 = len(word.prefix)
    k = len(word.loop)
    cap = max(p.hi for p in phases) + 1
    phase = 0
    t0 = 0
    completions = 0
    boundary_seen = {}
    i = 0
    while i < MAX_STEPS:
        s, t = word[i]
        if i >= p0 and (i - p0) % k == 0:
            # Loop boundary: the future depends only on (phase, capped
            # elapsed) here, so a repeat closes the recurring window.
            state = (phase, min(t - t0, cap))
            if state in boundary_seen:
                return completions > boundary_seen[state] if looped else False
            boundary_seen[state] = completions
        if s not in alphabet:
            return False  # unknown symbol: no transition, the run dies
        p = phases[phase]
        elapsed = t - t0
        if s == p.action:
            if not (p.lo <= elapsed <= p.hi):
                return False  # early or late action: the run dies
            t0 = t
            phase += 1
            if phase == len(phases):
                completions += 1
                if not looped:
                    return True
                phase = 0
        elif elapsed > p.hi:
            return False  # the budget expired while waiting
        i += 1
    raise RuntimeError("phase walker exceeded MAX_STEPS (semantics bug)")


def holds(
    spec: Union[Spec, PhaseSpec],
    word: TimedWord,
    alphabet: Iterable[Any],
) -> bool:
    """Does the lasso timed word satisfy the spec over ``alphabet``?

    Symbols outside ``alphabet`` fail every spec (they fall off the
    compiled automaton too — the alphabet is part of the language).
    """
    if not isinstance(word, TimedWord):
        raise TypeError(f"spec semantics take a TimedWord, got {type(word).__name__}")
    if word.fn is not None or word.is_finite:
        raise ValueError("spec semantics are defined on lasso timed words")
    omega = as_omega(spec)
    alpha = frozenset(alphabet)
    if isinstance(omega, Alt):
        return any(holds(p, word, alpha) for p in omega.parts)
    if isinstance(omega, Both):
        return all(holds(p, word, alpha) for p in omega.parts)
    if isinstance(omega, Loop):
        return _walk_chain(omega.body.phases, word, alpha, looped=True)
    if isinstance(omega, Eventually):
        return _walk_chain(omega.body.phases, word, alpha, looped=False)
    raise TypeError(f"not a spec: {spec!r}")
