"""Explicit parallel/distributed real-time models — Section 6."""

from .pcgs import PCGS, Component, Production, query
from .pram import Pram, PramConflictError, PramProgram, PramRun, PramVariant
from .process import ProcessBehaviour
from .system import ParallelSystem, ProcessContext, SystemRun

__all__ = [
    "ProcessBehaviour",
    "ParallelSystem",
    "ProcessContext",
    "SystemRun",
    "Pram",
    "PramVariant",
    "PramConflictError",
    "PramProgram",
    "PramRun",
    "PCGS",
    "Component",
    "Production",
    "query",
]
