"""The PRAM special case — Section 6.

"The PRAM can be considered a particular case as well: since the
communication between different processors is accomplished by
read/write operations from/to the shared memory, there is no
communication.  That is, both l_k and r_k are null words."

The executor is a synchronous PRAM (Akl [3]): all processors execute
one step per chronon against a shared memory; read/write conflicts are
policed per the selected variant (EREW / CREW / CRCW-common).  Each
processor's step trace becomes its c_k word; l_k = r_k = ε by
construction, which :mod:`tests` assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Sequence, Tuple

from .process import ProcessBehaviour

__all__ = ["PramVariant", "PramConflictError", "Pram", "PramProgram", "PramRun"]


class PramVariant(Enum):
    EREW = "EREW"  # exclusive read, exclusive write
    CREW = "CREW"  # concurrent read, exclusive write
    CRCW_COMMON = "CRCW"  # concurrent write allowed iff same value


class PramConflictError(RuntimeError):
    """A memory-access conflict forbidden by the PRAM variant."""


@dataclass
class _StepAccess:
    reads: Dict[int, List[int]]  # address -> pids
    writes: Dict[int, List[Tuple[int, Any]]]  # address -> (pid, value)


class PramMemoryView:
    """One processor's window onto shared memory for a single step.

    Reads see the memory as of the step's start (synchronous PRAM);
    writes are buffered and committed at the step barrier after
    conflict checking.
    """

    def __init__(self, pram: "Pram", pid: int, access: _StepAccess):
        self._pram = pram
        self._pid = pid
        self._access = access

    def read(self, address: int) -> Any:
        self._access.reads.setdefault(address, []).append(self._pid)
        return self._pram.memory.get(address)

    def write(self, address: int, value: Any) -> None:
        self._access.writes.setdefault(address, []).append((self._pid, value))


#: A PRAM program: fn(pid, step, view) -> False to halt, anything else to continue.
PramProgram = Callable[[int, int, PramMemoryView], Any]


@dataclass
class PramRun:
    steps: int
    memory: Dict[int, Any]
    behaviours: Dict[int, ProcessBehaviour]

    def behaviour_tuple(self):
        return tuple(
            self.behaviours[pid].behaviour_word() for pid in sorted(self.behaviours)
        )

    @property
    def communication_free(self) -> bool:
        """Section 6's claim, checkable: every l_k and r_k is null."""
        return all(b.communication_free for b in self.behaviours.values())


class Pram:
    """A synchronous PRAM with ``p`` processors."""

    def __init__(self, p: int, variant: PramVariant = PramVariant.EREW):
        if p <= 0:
            raise ValueError("need at least one processor")
        self.p = p
        self.variant = variant
        self.memory: Dict[int, Any] = {}

    def load(self, data: Sequence[Any], base: int = 0) -> None:
        for i, v in enumerate(data):
            self.memory[base + i] = v

    def _check_conflicts(self, access: _StepAccess) -> None:
        v = self.variant
        if v in (PramVariant.EREW,):
            for addr, pids in access.reads.items():
                if len(pids) > 1:
                    raise PramConflictError(f"concurrent read of {addr} by {pids}")
        if v in (PramVariant.EREW, PramVariant.CREW):
            for addr, writers in access.writes.items():
                if len(writers) > 1:
                    raise PramConflictError(
                        f"concurrent write of {addr} by {[p for p, _ in writers]}"
                    )
        else:  # CRCW-common: concurrent writes must agree
            for addr, writers in access.writes.items():
                values = {repr(val) for _pid, val in writers}
                if len(values) > 1:
                    raise PramConflictError(
                        f"CRCW-common write disagreement at {addr}: {values}"
                    )
        # write-after-read hazards within a step are fine on a
        # synchronous PRAM: reads see the pre-step memory.

    def run(self, program: PramProgram, max_steps: int = 10_000) -> PramRun:
        """Execute until every processor halts (returns False)."""
        behaviours = {pid: ProcessBehaviour(pid) for pid in range(1, self.p + 1)}
        active = set(range(1, self.p + 1))
        step = 0
        while active and step < max_steps:
            access = _StepAccess(reads={}, writes={})
            halted: List[int] = []
            for pid in sorted(active):
                view = PramMemoryView(self, pid, access)
                keep = program(pid, step, view)
                behaviours[pid].record_compute(f"step{step}", step)
                if keep is False:
                    halted.append(pid)
            self._check_conflicts(access)
            # barrier: commit writes (deterministic order, then by pid)
            for addr in sorted(access.writes):
                for _pid, value in access.writes[addr]:
                    self.memory[addr] = value
            for pid in halted:
                active.discard(pid)
            step += 1
        return PramRun(steps=step, memory=dict(self.memory), behaviours=behaviours)
