"""Per-process behaviour words — Section 6.

"Consider now some process k isolated from the external world … its
execution can be modeled by some timed ω-word.  Call this word c_k.
… the messages [it] sends … some timed ω-word l_k … the messages that
are received … r_k.  Then, the behavior of process k is modeled by the
timed ω-word c_k l_k r_k."

:class:`ProcessBehaviour` collects the three event streams during a
run and renders them as timed words (finite words over the run's
horizon — the executable view of the ω-model); the behaviour of a
p-process system is the tuple (c₁l₁r₁, …, c_p l_p r_p).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from ..words.concat import concat
from ..words.timedword import TimedWord

__all__ = ["ProcessBehaviour"]


@dataclass
class ProcessBehaviour:
    """The recorded behaviour of one process: computation steps,
    messages sent (l_k), messages received (r_k)."""

    pid: int
    compute_events: List[Tuple[Any, int]] = field(default_factory=list)
    sent: List[Tuple[Any, int]] = field(default_factory=list)
    received: List[Tuple[Any, int]] = field(default_factory=list)

    # -- recording hooks ---------------------------------------------------
    def record_compute(self, label: Any, t: int) -> None:
        self.compute_events.append((("c", self.pid, label), t))

    def record_send(self, to: int, payload: Any, t: int) -> None:
        self.sent.append((("l", self.pid, to, payload), t))

    def record_receive(self, frm: int, payload: Any, t: int) -> None:
        self.received.append((("r", self.pid, frm, payload), t))

    # -- word views -----------------------------------------------------------
    def c_word(self) -> TimedWord:
        return TimedWord.finite(self.compute_events)

    def l_word(self) -> TimedWord:
        return TimedWord.finite(self.sent)

    def r_word(self) -> TimedWord:
        return TimedWord.finite(self.received)

    def behaviour_word(self) -> TimedWord:
        """c_k l_k r_k via Definition 3.5 concatenation."""
        return concat(concat(self.c_word(), self.l_word()), self.r_word())

    @property
    def communication_free(self) -> bool:
        """True when l_k and r_k are null words (the PRAM case)."""
        return not self.sent and not self.received
