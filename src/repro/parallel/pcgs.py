"""Parallel communicating grammar systems (PCGS) — Section 6's
"intuitional support" [29, 13, 17, 20].

A PCGS is a tuple of grammars with their own sentential forms that
rewrite in lockstep; when a component's form contains a *query symbol*
Q_j, a communication step replaces each Q_j by component j's current
form (and, in returning systems, component j restarts from its axiom).
The master component (index 1) generates the system's language.

Implemented: context-free components, synchronous derivation, returning
and non-returning communication, deterministic leftmost rewriting with
a seeded RNG for nondeterministic choice, and bounded-length language
enumeration for tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

__all__ = ["Production", "Component", "PCGS", "query"]


def query(j: int) -> str:
    """The query symbol Q_j."""
    return f"Q{j}"


@dataclass(frozen=True)
class Production:
    """A context-free production A → w (w as a symbol tuple)."""

    lhs: str
    rhs: Tuple[str, ...]


@dataclass
class Component:
    """One grammar of the system."""

    nonterminals: Set[str]
    axiom: str
    productions: List[Production]

    def rewritable(self, form: Tuple[str, ...]) -> bool:
        return any(s in self.nonterminals for s in form)


class PCGS:
    """A parallel communicating grammar system of n components."""

    def __init__(self, components: Sequence[Component], returning: bool = True):
        if not components:
            raise ValueError("a PCGS has at least one component")
        self.components = list(components)
        self.returning = returning
        self.n = len(components)

    def initial_forms(self) -> List[Tuple[str, ...]]:
        return [(c.axiom,) for c in self.components]

    # -- one synchronous step ----------------------------------------------
    def _has_query(self, forms: List[Tuple[str, ...]]) -> bool:
        return any(any(s.startswith("Q") and s[1:].isdigit() for s in f) for f in forms)

    def communication_step(self, forms: List[Tuple[str, ...]]) -> List[Tuple[str, ...]]:
        """Replace every query symbol by the queried component's form.

        Communication has priority over rewriting; in returning mode a
        queried component falls back to its axiom afterwards.
        """
        queried: Set[int] = set()
        out: List[Tuple[str, ...]] = []
        for form in forms:
            new: List[str] = []
            for s in form:
                if s.startswith("Q") and s[1:].isdigit():
                    j = int(s[1:])
                    if not (1 <= j <= self.n):
                        raise ValueError(f"query {s} out of range")
                    new.extend(forms[j - 1])
                    queried.add(j - 1)
                else:
                    new.append(s)
            out.append(tuple(new))
        if self.returning:
            for j in queried:
                out[j] = (self.components[j].axiom,)
        return out

    def rewrite_step(
        self, forms: List[Tuple[str, ...]], rng: random.Random
    ) -> Optional[List[Tuple[str, ...]]]:
        """One synchronous leftmost rewriting step.

        Every component holding a nonterminal must rewrite (a component
        that cannot blocks the whole system — the PCGS convention);
        terminal-only components idle.  Returns None when blocked.
        """
        out: List[Tuple[str, ...]] = []
        for comp, form in zip(self.components, forms):
            if not comp.rewritable(form):
                out.append(form)
                continue
            # leftmost nonterminal
            at = next(i for i, s in enumerate(form) if s in comp.nonterminals)
            options = [p for p in comp.productions if p.lhs == form[at]]
            if not options:
                return None  # blocked
            prod = rng.choice(options)
            out.append(form[:at] + prod.rhs + form[at + 1 :])
        return out

    # -- derivation ------------------------------------------------------------
    def derive(self, max_steps: int = 200, seed: int = 0) -> Optional[Tuple[str, ...]]:
        """One random derivation of the master component (None if stuck)."""
        rng = random.Random(seed)
        forms = self.initial_forms()
        for _ in range(max_steps):
            if self._has_query(forms):
                forms = self.communication_step(forms)
                continue
            master = forms[0]
            if not self.components[0].rewritable(master):
                return master
            nxt = self.rewrite_step(forms, rng)
            if nxt is None:
                return None
            forms = nxt
        return None

    def language_sample(
        self, tries: int = 200, max_steps: int = 200, seed: int = 0
    ) -> Set[Tuple[str, ...]]:
        """Distinct terminal words reachable over ``tries`` derivations."""
        out: Set[Tuple[str, ...]] = set()
        for i in range(tries):
            w = self.derive(max_steps=max_steps, seed=seed + i)
            if w is not None:
                out.add(w)
        return out
