"""Message-coupled process systems — the Section 6 parallel model.

"One can assume that the implementation is composed of a set of n
processes, that execute independently, and communicate with each other
by messages."  :class:`ParallelSystem` realizes that on the kernel:
each process runs as a generator with a :class:`ProcessContext` whose
only inter-process facility is ``send``/``recv`` over channels, and
every interaction is recorded into the per-process
:class:`~repro.parallel.process.ProcessBehaviour` so a run denotes the
tuple (c₁l₁r₁, …, c_p l_p r_p).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator

from ..kernel.events import Event

from ..kernel.simulator import Process, Simulator
from .process import ProcessBehaviour

__all__ = ["ProcessContext", "ParallelSystem", "SystemRun"]


class ProcessContext:
    """What one process sees: its id, a clock, compute, send, recv."""

    def __init__(self, system: "ParallelSystem", pid: int):
        self.system = system
        self.pid = pid
        self.behaviour = ProcessBehaviour(pid)

    @property
    def now(self) -> int:
        return self.system.sim.now

    def compute(self, label: Any = "step", duration: int = 1) -> Event:
        """A local computation step of ``duration`` chronons."""
        self.behaviour.record_compute(label, self.now)
        return self.system.sim.timeout(duration)

    def send(self, to: int, payload: Any) -> Event:
        """Send a message (recorded in l_k; latency from the system)."""
        self.behaviour.record_send(to, payload, self.now)
        return self.system.mailboxes[to].put((self.pid, payload))

    def recv(self) -> Event:
        """Receive the next message; fires with (sender, payload)."""
        ev = self.system.mailboxes[self.pid].get()
        ev.add_callback(self._note_receive)
        return ev

    def _note_receive(self, ev: Event) -> None:
        if ev.ok:
            frm, payload = ev.value
            self.behaviour.record_receive(frm, payload, self.now)


#: A process body: generator over (ctx) yielding kernel events.
ProcessBody = Callable[[ProcessContext], Generator[Event, Any, Any]]


@dataclass
class SystemRun:
    """Results of a finished system run."""

    behaviours: Dict[int, ProcessBehaviour]
    results: Dict[int, Any]
    finished_at: int

    def behaviour_tuple(self):
        """(c₁l₁r₁, …, c_p l_p r_p) as Section 6 defines it."""
        return tuple(
            self.behaviours[pid].behaviour_word() for pid in sorted(self.behaviours)
        )


class ParallelSystem:
    """p independent processes + message channels on one kernel.

    ``latency`` is the message delay in chronons (1 models the ad hoc
    network's unit hop; 0 models a tightly-coupled cluster).
    """

    def __init__(self, n_processes: int, latency: int = 1):
        if n_processes <= 0:
            raise ValueError("need at least one process")
        self.sim = Simulator()
        self.n = n_processes
        self.latency = latency
        from ..kernel.resources import Channel

        self.mailboxes: Dict[int, Channel] = {
            pid: Channel(self.sim, latency=latency) for pid in range(1, n_processes + 1)
        }
        self.contexts: Dict[int, ProcessContext] = {}
        self._bodies: Dict[int, ProcessBody] = {}

    def add_process(self, pid: int, body: ProcessBody) -> None:
        if pid not in self.mailboxes:
            raise ValueError(f"pid {pid} out of range 1..{self.n}")
        self._bodies[pid] = body

    def run(self, until: int = 10_000) -> SystemRun:
        """Run all processes to completion (or the horizon)."""
        procs: Dict[int, Process] = {}
        for pid in range(1, self.n + 1):
            body = self._bodies.get(pid)
            if body is None:
                continue
            ctx = ProcessContext(self, pid)
            self.contexts[pid] = ctx
            procs[pid] = self.sim.process(body(ctx), name=f"P{pid}")
        self.sim.run(until=until)
        results = {
            pid: (proc.value if proc.triggered and proc.ok else None)
            for pid, proc in procs.items()
        }
        return SystemRun(
            behaviours={pid: ctx.behaviour for pid, ctx in self.contexts.items()},
            results=results,
            finished_at=self.sim.now,
        )
