"""E19 (extension): rt-SPACE — certified space-bounded membership and
measured growth curves (the §3.2 class programme, executably).

Three acceptors for three languages, each run under a hard space meter
across a size sweep:

* parity of a length-prefixed block      — rt-SPACE(O(1));
* "block equals its reversal" (explicit buffer) — rt-SPACE(O(n));
* a binary counter acceptor for block length     — rt-SPACE(O(log n)).

Expected shape: the measured peak-storage curves classify as O(1),
O(n), O(log n) respectively; certified membership holds under the
matching bound and trips under the next-tighter one.
"""

import math

import pytest

from repro.complexity import (
    CONST,
    LINSPACE,
    LOGSPACE,
    ResourceBound,
    measure_space_curve,
    rt_space_membership,
)
from repro.machine import RealTimeAlgorithm
from repro.words import TimedWord


def block_word(symbols, member_tag=True):
    pairs = [(len(symbols), 0)] + [(s, i + 1) for i, s in enumerate(symbols)]
    return TimedWord.lasso(pairs, [("w", len(symbols) + 2)], shift=1)


# -- acceptors ----------------------------------------------------------------

def parity_acceptor():
    def prog(ctx):
        n, _ = yield ctx.input.read()
        count = 0
        for _ in range(n):
            s, _ = yield ctx.input.read()
            count ^= 1 if s == "a" else 0
        ctx.storage["parity"] = count
        ctx.accept() if count == 0 else ctx.reject()

    return RealTimeAlgorithm(prog)


def palindrome_acceptor():
    def prog(ctx):
        n, _ = yield ctx.input.read()
        buf = []
        for i in range(n):
            s, _ = yield ctx.input.read()
            buf.append(s)
            ctx.storage[i] = s  # explicit O(n) buffer
        ctx.accept() if buf == buf[::-1] else ctx.reject()

    return RealTimeAlgorithm(prog)


def counter_acceptor():
    """Counts the block in binary: ⌈log₂ n⌉ storage cells."""

    def prog(ctx):
        n, _ = yield ctx.input.read()
        bits = max(1, math.ceil(math.log2(n + 2)))
        for b in range(bits):
            ctx.storage[f"bit{b}"] = 0
        seen = 0
        for _ in range(n):
            yield ctx.input.read()
            seen += 1
            for b in range(bits):  # ripple increment over the cells
                ctx.storage[f"bit{b}"] = (seen >> b) & 1
        ctx.accept() if seen == n else ctx.reject()

    return RealTimeAlgorithm(prog)


SIZES = [4, 8, 16, 32, 64, 128]


def _instances(member=True):
    out = []
    for n in SIZES:
        a_count = (n // 2) * 2 if member else (n // 2) * 2 - 1
        syms = ["a"] * a_count + ["b"] * (n - a_count)
        out.append((n, block_word(syms), member))
    return out


def test_e19_growth_classification(once, report):
    def sweep():
        for label, factory, expected in (
            ("parity", parity_acceptor, "O(1)"),
            ("palindrome", palindrome_acceptor, "O(n)"),
            ("counter", counter_acceptor, "O(log n)"),
        ):
            curve = measure_space_curve(
                factory,
                lambda n: block_word(["a"] * n),
                sizes=SIZES,
            )
            report.add(acceptor=label, peaks=tuple(curve.peaks),
                       classified=curve.label, expected=expected)
            assert curve.label == expected

    once(sweep)


def test_e19_certified_membership(once, report):
    def sweep():
        # parity fits O(1)
        ev = rt_space_membership(parity_acceptor, _instances(), CONST)
        report.add(acceptor="parity", bound=CONST.name, holds=ev.holds)
        assert ev.holds
        # palindrome fits O(n) but NOT O(log n)
        pal_instances = [
            (n, block_word(["a"] * n), True) for n in SIZES
        ]
        ok = rt_space_membership(palindrome_acceptor, pal_instances, LINSPACE)
        report.add(acceptor="palindrome", bound=LINSPACE.name, holds=ok.holds)
        assert ok.holds
        tight = rt_space_membership(palindrome_acceptor, pal_instances, LOGSPACE)
        report.add(acceptor="palindrome", bound=LOGSPACE.name, holds=tight.holds)
        assert not tight.within_bound
        # counter fits O(log n)
        cnt = rt_space_membership(
            counter_acceptor, pal_instances, LOGSPACE
        )
        report.add(acceptor="counter", bound=LOGSPACE.name, holds=cnt.holds)
        assert cnt.holds

    once(sweep)


@pytest.mark.parametrize("factory", [parity_acceptor, counter_acceptor, palindrome_acceptor],
                         ids=["parity", "counter", "palindrome"])
def test_e19_acceptor_cost(benchmark, factory):
    word = block_word(["a"] * 64)
    rep = benchmark(lambda: factory().decide(word, horizon=2_000))
    assert rep.verdict.value in ("accept", "reject")
