"""Engine batch layer: strategy ablation, compile caching, fan-out.

Four regimes, all through :mod:`repro.engine`:

* **strategy ablation** — one E14 word sweep judged by ``lasso-exact``
  vs ``long-prefix-empirical``; the exact strategy stops at the
  decision point while the empirical one pays the whole horizon, so
  words/sec separate by an order of magnitude (the speedup the engine
  makes selectable per request);
* **legacy** — the pre-engine shape: every decision recompiles its
  acceptor (the TBA→machine compilation) and runs a private loop;
* **batched-serial** — compile once through the engine's acceptor
  cache, judge the sweep with ``decide_many(workers=1)``;
* **batched-pool** — same, ``workers=4`` over forked processes,
  checked bit-identical to serial (the engine's fan-out guarantee),
  plus the persistent shard pool (``backend="shards"``,
  :mod:`repro.shard`) under the identical batch — the warm-worker
  answer to the fork pool's per-call spawn cost (deep dive:
  ``benchmarks/bench_shards.py`` / ``BENCH_shards.json``).

Words/sec per regime land in the ``--bench-json`` capture
(``BENCH_engine.json``).  Set ``REPRO_BENCH_QUICK=1`` for CI-sized
parameters.
"""

import time

import pytest
from conftest import quick_sized

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import Verdict, clear_caches, compiled_tba, decide_many
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm, tba_to_algorithm
from repro.words import TimedWord

N_WORDS = quick_sized(64, 16)
HORIZON = quick_sized(400, 200)
SWEEP_HORIZON = quick_sized(5_000, 1_000)


def make_parity_word(n, member):
    """E14 parity word: accept iff the n-symbol header sums even."""
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_parity_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


@pytest.mark.parametrize("strategy", ["lasso-exact", "long-prefix-empirical"])
def test_strategy_ablation_words_per_sec(benchmark, report, bench_record, strategy):
    """The E14 pair as engine strategies over one decide_many sweep."""
    acceptor = make_parity_acceptor()
    words = [make_parity_word(n, m) for n in (8, 16, 32) for m in (True, False)]

    def sweep():
        return decide_many(acceptor, words, horizon=SWEEP_HORIZON, strategy=strategy)

    reports = benchmark(sweep)
    assert [r.accepted for r in reports] == [True, False] * 3
    wps = round(len(words) / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode=f"strategy:{strategy}", words=len(words), words_per_sec=wps)
    report.add(strategy=strategy, horizon=SWEEP_HORIZON, wps=wps)


def bounded_gap_tba(bound=2):
    """Deterministic TBA: every inter-arrival gap ≤ bound."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def make_words(n):
    """Half members (gap 1), half not (one gap of 5 breaks the bound)."""
    words = []
    for i in range(n):
        if i % 2 == 0:
            words.append(TimedWord.lasso([], [("a", 1)], shift=1))
        else:
            words.append(TimedWord.lasso([("a", 1), ("a", 6)], [("a", 7)], shift=1))
    return words


def judge_kwargs():
    # The compiled TBA machine declares an absorbing REJECT when every
    # run dies but certifies acceptance by f-rate, so judge with the
    # raw-verdict f-rate strategy: member ⟺ not rejected.
    return dict(horizon=HORIZON, strategy="f-rate")


def accepted(report):
    return report.verdict is not Verdict.REJECT


def test_legacy_recompile_per_decision(benchmark, report, bench_record):
    tba = bounded_gap_tba()
    words = make_words(N_WORDS)

    def legacy():
        # the pre-engine call shape: fresh compilation per judgement
        return [
            tba_to_algorithm(tba).count_f(w, HORIZON).verdict is not Verdict.REJECT
            for w in words
        ]

    verdicts = benchmark(legacy)
    assert verdicts == [i % 2 == 0 for i in range(N_WORDS)]
    wps = round(N_WORDS / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode="legacy", words=N_WORDS, words_per_sec=wps)
    report.add(mode="legacy", words=N_WORDS, wps=wps)


def test_batched_compile_once_serial(benchmark, report, bench_record):
    tba = bounded_gap_tba()
    words = make_words(N_WORDS)
    clear_caches()

    def batched():
        acceptor = compiled_tba(tba)
        return decide_many(acceptor, words, **judge_kwargs())

    reports = benchmark(batched)
    assert [accepted(r) for r in reports] == [i % 2 == 0 for i in range(N_WORDS)]
    wps = round(N_WORDS / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode="batched-serial", words=N_WORDS, words_per_sec=wps)
    report.add(mode="batched-serial", words=N_WORDS, wps=wps)


def test_batched_pool_bit_identical(once, report, bench_record):
    tba = bounded_gap_tba()
    words = make_words(N_WORDS)
    clear_caches()
    acceptor = compiled_tba(tba)

    from repro.shard import shared_pool, shutdown_pool

    shutdown_pool()
    shared_pool(4)  # shard workers spawn outside the timed region
    decide_many(acceptor, words[:4], workers=4, backend="shards", **judge_kwargs())

    def pooled():
        t0 = time.perf_counter()
        serial = decide_many(acceptor, words, workers=1, seed=11, **judge_kwargs())
        t1 = time.perf_counter()
        pool = decide_many(
            acceptor, words, workers=4, seed=11, backend="fork", **judge_kwargs()
        )
        t2 = time.perf_counter()
        shards = decide_many(
            acceptor, words, workers=4, seed=11, backend="shards", **judge_kwargs()
        )
        t3 = time.perf_counter()
        assert serial == pool  # bit-identical under fan-out
        assert serial == shards  # ... and under the persistent pool
        return t1 - t0, t2 - t1, t3 - t2

    try:
        serial_s, pool_s, shards_s = once(pooled)
    finally:
        shutdown_pool()
    bench_record(
        mode="pool-vs-serial",
        words=N_WORDS,
        workers=4,
        serial_words_per_sec=round(N_WORDS / max(serial_s, 1e-9), 1),
        pool_words_per_sec=round(N_WORDS / max(pool_s, 1e-9), 1),
        shards_words_per_sec=round(N_WORDS / max(shards_s, 1e-9), 1),
    )
    report.add(
        serial_s=round(serial_s, 4),
        pool_s=round(pool_s, 4),
        shards_s=round(shards_s, 4),
        identical=True,
    )
