"""E7 + E8: Definition 5.1 — the recognition problem for real-time
queries (eqs. 9 and 10) plus the Lemma 5.1 bound check.

E7 expected shape: membership decisions track the query semantics
exactly across deadline kinds, and acceptance cost grows with database
size (the stream carries more samples before the query header).

E8 expected shape: the periodic acceptor serves one f per invocation;
the measured k′ of each pq word never exceeds the Lemma 5.1 bound.
"""

import pytest
from conftest import quick_sized

from repro.deadlines import DeadlineKind, DeadlineSpec, HyperbolicUsefulness
from repro.rtdb import (
    QueryRegistry,
    RecognitionInstance,
    decide_aperiodic,
    lemma51_bound,
    pq_word,
    serve_periodic,
)

REGISTRY = QueryRegistry(
    queries={
        # threshold below the sensor floor (values are 20..29), so the
        # candidate's membership is stable across sampling instants —
        # the nonmember case uses a name outside the schema instead
        "hot": lambda st: {(n,) for n, v in st.images.items() if v >= 20},
    },
    derivations={},
    eval_cost=lambda name, st: 2,
)

N_SENSORS = quick_sized([1, 4, 16], [1, 4])
PERIODS = quick_sized([5, 10, 50], [5, 10])
SERVICE_HORIZON = quick_sized(400, 200)
LEMMA_KS = quick_sized((16, 64, 256), (16, 64))
LEMMA_HORIZON = quick_sized(500_000, 100_000)


def _instance(spec, issue_time=12, n_sensors=1):
    images = {
        f"temp{i}": (3, (lambda i: (lambda t: 20 + (t + i) % 10))(i))
        for i in range(n_sensors)
    }
    return RecognitionInstance(
        invariants={"site": "plant"},
        derived={},
        images=images,
        query_name="hot",
        issue_time=issue_time,
        spec=spec,
    )


def test_e7_decision_matrix(once, report):
    """Aperiodic recognition across deadline kinds (eq. 9)."""
    soft = DeadlineSpec(
        DeadlineKind.SOFT,
        t_d=4,
        usefulness=HyperbolicUsefulness(max_value=8, t_d=16),
        min_acceptable=1,
    )
    cases = [
        ("none/member", DeadlineSpec(DeadlineKind.NONE), ("temp0",), True),
        ("none/nonmember", DeadlineSpec(DeadlineKind.NONE), ("bogus",), False),
        ("firm/member", DeadlineSpec(DeadlineKind.FIRM, t_d=10), ("temp0",), True),
        ("soft/member", soft, ("temp0",), True),
    ]

    def sweep():
        for label, spec, candidate, expected in cases:
            inst = _instance(spec)
            rep = decide_aperiodic(REGISTRY, inst, candidate, horizon=3000)
            report.add(case=label, expected=expected, decided=rep.accepted,
                       at=rep.decided_at)
            assert rep.accepted == expected

    once(sweep)


@pytest.mark.parametrize("n_sensors", N_SENSORS)
def test_e7_acceptance_cost_vs_db_size(benchmark, report, n_sensors):
    """eq. (9) membership cost as the database grows."""
    inst = _instance(DeadlineSpec(DeadlineKind.NONE), n_sensors=n_sensors)

    def decide():
        return decide_aperiodic(REGISTRY, inst, ("temp0",), horizon=3000)

    rep = benchmark(decide)
    assert rep.accepted
    report.add(sensors=n_sensors, decided_at=rep.decided_at)


@pytest.mark.parametrize("period", PERIODS)
def test_e8_periodic_service(benchmark, report, period):
    """eq. (10): one f per served invocation."""
    inst = _instance(DeadlineSpec(DeadlineKind.NONE), issue_time=10)
    horizon = SERVICE_HORIZON

    def serve():
        return serve_periodic(
            REGISTRY, inst, candidates=lambda i: ("temp0",), period=period,
            horizon=horizon,
        )

    rep = benchmark(serve)
    # an invocation issued at t completes at t + eval_cost(=2)
    expected = 1 + (horizon - 2 - 10) // period
    report.add(period=period, served=rep.f_count, expected=expected)
    assert rep.f_count == expected


def test_e8_lemma51_bound(once, report):
    """Measured k′ vs the Lemma 5.1 bound across periods and horizons."""

    def sweep():
        for period in PERIODS:
            w = pq_word(
                "hot",
                lambda i: ("temp0",),
                issue_time=5,
                period=period,
                spec_for=lambda i: DeadlineSpec(DeadlineKind.FIRM, t_d=4),
            )
            ts = w.time_sequence
            header_len = len(repr(("temp0",))) + len("hot@5") + 3
            for k in LEMMA_KS:
                kprime = ts.first_index_reaching(k, horizon=LEMMA_HORIZON)
                bound = lemma51_bound(k, 5, period, header_len + 4)
                report.add(period=period, k=k, k_prime=kprime, bound=bound,
                           within=kprime is not None and kprime <= bound)
                assert kprime is not None and kprime <= bound

    once(sweep)
