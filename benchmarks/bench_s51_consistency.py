"""E9: Section 5.1.2 — absolute/relative consistency under sampling.

Sweeps sampling periods against consistency thresholds on a running
RTDB and reports the fraction of probe instants at which the database
is absolutely / relatively consistent.

Expected shape: absolute consistency holds ⟺ threshold ≥ max sampling
period − 1 (the worst-case age just before a refresh); relative
consistency holds ⟺ threshold ≥ the worst-case phase gap between the
two samplers.
"""

import pytest

from repro.kernel import Simulator
from repro.rtdb import RealTimeDatabase


def _run(period_a: int, period_b: int, abs_thr: int, rel_thr: int, horizon: int = 240):
    sim = Simulator()
    db = RealTimeDatabase(sim, lambda name, t: t)
    db.add_image("a", period=period_a)
    db.add_image("b", period=period_b)
    db.add_derived("combo", ["a", "b"], lambda x, y: x + y)
    db.start_sampling(horizon=horizon)
    stats = {"probes": 0, "absolute": 0, "relative": 0}

    def probe():
        while True:
            yield sim.timeout(7)
            rep = db.check_consistency(abs_thr, rel_thr)
            stats["probes"] += 1
            stats["absolute"] += rep.absolute and rep.derived_fresh
            stats["relative"] += rep.relative

    sim.process(probe())
    sim.run(until=horizon)
    return stats


def test_e9_threshold_sweep(once, report):
    def sweep():
        for period_a, period_b in ((4, 4), (4, 10), (10, 25)):
            for thr in (2, 5, 9, 24):
                stats = _run(period_a, period_b, abs_thr=thr, rel_thr=thr)
                report.add(
                    periods=f"{period_a}/{period_b}",
                    threshold=thr,
                    absolute_pct=round(100 * stats["absolute"] / stats["probes"]),
                    relative_pct=round(100 * stats["relative"] / stats["probes"]),
                )
        # the anchor shapes: tight thresholds fail, generous ones hold
        tight = _run(10, 25, abs_thr=2, rel_thr=2)
        loose = _run(10, 25, abs_thr=24, rel_thr=24)
        assert tight["absolute"] < tight["probes"]
        assert loose["absolute"] == loose["probes"]
        assert loose["relative"] == loose["probes"]

    once(sweep)


@pytest.mark.parametrize("n_objects", [2, 8, 32])
def test_e9_consistency_check_cost(benchmark, report, n_objects):
    """Relative consistency is O(n²) pairwise — measured here."""
    sim = Simulator()
    db = RealTimeDatabase(sim, lambda name, t: 0)
    for i in range(n_objects):
        db.add_image(f"o{i}", period=3 + (i % 5))
    db.start_sampling(horizon=50)
    sim.run(until=50)

    rep = benchmark(db.check_consistency, 10, 10)
    report.add(objects=n_objects, consistent=rep.consistent)
