"""E12: Section 6 — the explicit parallel/distributed model.

Benches p-process message-coupled systems (behaviour-word tuples
(c₁l₁r₁, …, c_p l_p r_p)) and the PRAM special case, checking the
section's structural claims: message systems have non-null l/r words,
PRAM runs have null ones, and the PRAM tree reduction takes ⌈log₂ n⌉+1
synchronous steps.
"""

import pytest

from repro.parallel import ParallelSystem, Pram, PramVariant


def _ring_system(p: int, rounds: int = 4) -> ParallelSystem:
    """A token ring: each process forwards a counter ``rounds`` times."""
    system = ParallelSystem(p, latency=1)

    def maker(pid: int):
        def body(ctx):
            nxt = pid % p + 1
            if pid == 1:
                yield ctx.send(nxt, 0)
            hops = 0
            while hops < rounds:
                _frm, value = yield ctx.recv()
                hops += 1
                yield ctx.compute("bump", 1)
                yield ctx.send(nxt, value + 1)
            return hops

        return body

    for pid in range(1, p + 1):
        system.add_process(pid, maker(pid))
    return system


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_e12_message_system_scaling(benchmark, report, p):
    def run():
        return _ring_system(p).run(until=10_000)

    run_result = benchmark(run)
    words = run_result.behaviour_tuple()
    assert len(words) == p
    # Section 6: these processes communicate, so l_k/r_k are non-null
    assert all(not b.communication_free for b in run_result.behaviours.values())
    total_msgs = sum(len(b.sent) for b in run_result.behaviours.values())
    report.add(processes=p, messages=total_msgs, finished_at=run_result.finished_at)


@pytest.mark.parametrize("n", [8, 64, 256])
def test_e12_pram_reduction(benchmark, report, n):
    """PRAM tree-sum: ⌈log₂ n⌉ + 1 steps, zero messages."""

    def run():
        pram = Pram(n // 2, PramVariant.EREW)
        pram.load(list(range(n)))

        def program(pid, step, mem):
            stride = 2**step
            base = (pid - 1) * 2 * stride
            if stride >= n:
                return False
            if base + stride < n:
                mem.write(base, (mem.read(base) or 0) + (mem.read(base + stride) or 0))
            return True

        return pram.run(program)

    result = benchmark(run)
    assert result.memory[0] == n * (n - 1) // 2
    assert result.communication_free  # the Section 6 PRAM claim
    import math

    expected_steps = math.ceil(math.log2(n)) + 1
    report.add(n=n, steps=result.steps, log2n_plus_1=expected_steps,
               comm_free=result.communication_free)
    assert result.steps == expected_steps


def test_e12_behaviour_word_construction(benchmark, report):
    """Cost of rendering a run as the Section 6 word tuple."""
    run_result = _ring_system(8, rounds=8).run(until=10_000)

    def build():
        return run_result.behaviour_tuple()

    words = benchmark(build)
    report.add(processes=len(words),
               events=sum(len(w.prefix) for w in words))
