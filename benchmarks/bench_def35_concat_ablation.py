"""E15: the Definition 3.5 concatenation ablation.

The paper motivates Definition 3.5 by observing that naive
concatenation (append σ, append τ) "fails to produce a timed word".
We quantify that: on random pairs of timed words, what fraction of
naive concatenations break monotonicity, versus the merge — which
never does.  Plus merge-cost scaling for the three representation
pairings (finite·finite, finite·lasso, lasso·lasso).

Expected shape: naive failure rate climbs toward 1 as word length
grows (any first-operand symbol later than any second-operand symbol
breaks it); Definition 3.5 failure rate is exactly 0.
"""

import random

import pytest

from repro.words import TimedWord, Trilean, concat, naive_concat


def random_finite(rng: random.Random, size: int) -> TimedWord:
    times = sorted(rng.randint(0, 4 * size) for _ in range(size))
    return TimedWord.finite([(rng.choice("abc"), t) for t in times])


def test_e15_naive_failure_rate(once, report):
    def sweep():
        rng = random.Random(0)
        for size in (2, 4, 8, 16, 32):
            naive_bad = 0
            merge_bad = 0
            trials = 200
            for _ in range(trials):
                a = random_finite(rng, size)
                b = random_finite(rng, size)
                if naive_concat(a, b).is_valid() is Trilean.FALSE:
                    naive_bad += 1
                if concat(a, b).is_valid() is Trilean.FALSE:
                    merge_bad += 1
            report.add(
                size=size,
                naive_invalid_pct=round(100 * naive_bad / trials),
                def35_invalid_pct=round(100 * merge_bad / trials),
            )
            assert merge_bad == 0
        return True

    assert once(sweep)


@pytest.mark.parametrize("size", [16, 64, 256])
def test_e15_merge_cost_finite(benchmark, report, size):
    rng = random.Random(size)
    a = random_finite(rng, size)
    b = random_finite(rng, size)
    merged = benchmark(concat, a, b)
    assert len(merged) == 2 * size
    report.add(pairing="finite·finite", size=size)


@pytest.mark.parametrize("size", [16, 64, 256])
def test_e15_merge_cost_finite_lasso(benchmark, report, size):
    rng = random.Random(size)
    fin = random_finite(rng, size)
    lasso = TimedWord.lasso([], [("w", 1)], shift=1)
    merged = benchmark(concat, fin, lasso)
    assert merged.is_well_behaved() is Trilean.TRUE
    report.add(pairing="finite·lasso", size=size)


@pytest.mark.parametrize("shifts", [(2, 3), (5, 7), (12, 18)])
def test_e15_merge_cost_lasso_lasso(benchmark, report, shifts):
    s1, s2 = shifts
    a = TimedWord.lasso([("p", 0)], [("a", 1)], shift=s1)
    b = TimedWord.lasso([], [("b", 2)], shift=s2)
    merged = benchmark(concat, a, b)
    assert merged.is_well_behaved() is Trilean.TRUE
    report.add(pairing="lasso·lasso", shifts=f"{s1}/{s2}",
               exact="lasso" if merged.fn is None else "lazy")
