"""E18 (extension): anytime query quality vs deadline budget (Vrbsky
[34], the source of the paper's §5.1.2 data model).

A soft-deadline query that runs out of time returns the partial answer;
we sweep the budget and report completeness and recall.

Expected shape: recall is 0 at budget 0, non-decreasing, and reaches
1.0 at full budget; every partial answer is a subset of the exact one
(certainty); cost grows with the consumed prefix.
"""

import random

import pytest

from repro.rtdb import (
    AnytimeEvaluator,
    DatabaseInstance,
    DatabaseSchema,
    NaturalJoin,
    Projection,
    Relation,
    RelationSchema,
    Selection,
    figure2_query,
    ngc_example,
)


def _big_db(n_rows: int, seed: int = 0) -> DatabaseInstance:
    rng = random.Random(seed)
    left = RelationSchema("Readings", ("Sensor", "Value"))
    right = RelationSchema("Sites", ("Sensor", "Site"))
    db = DatabaseInstance(DatabaseSchema([left, right]))
    for i in range(n_rows):
        db.insert("Readings", (f"s{i % 50}", rng.randint(0, 100)))
        db.insert("Sites", (f"s{i % 50}", f"site-{i % 7}"))
    return db


def _query():
    join = NaturalJoin(Relation("Readings"), Relation("Sites"))
    hot = Selection(join, "Value", ">=", 50)
    return Projection(hot, ("Sensor", "Site"))


def test_e18_quality_curve(once, report):
    def sweep():
        ev = AnytimeEvaluator(_query(), _big_db(400))
        exact = ev.exact()
        budgets = [0, 50, 100, 200, 400, 800]
        prev_recall = -1.0
        for b in budgets:
            ans = ev.evaluate(b)
            recall = ans.recall_against(exact)
            report.add(
                budget=b,
                completeness=round(ans.completeness, 2),
                recall=round(recall, 2),
                answer_size=len(ans.tuples),
            )
            assert ans.tuples <= exact  # certainty
            assert recall >= prev_recall - 1e-12  # monotone improvement
            prev_recall = recall
        assert prev_recall == 1.0

    once(sweep)


def test_e18_figure2_anytime(once, report):
    """The paper's own query, served anytime."""

    def sweep():
        ev = AnytimeEvaluator(figure2_query(), ngc_example())
        for b, completeness, recall in ev.quality_curve([0, 3, 6, 9]):
            report.add(budget=b, completeness=round(completeness, 2),
                       recall=round(recall, 2))

    once(sweep)


@pytest.mark.parametrize("budget", [50, 200, 800])
def test_e18_evaluation_cost(benchmark, report, budget):
    ev = AnytimeEvaluator(_query(), _big_db(400))
    ans = benchmark(ev.evaluate, budget)
    report.add(budget=budget, consumed=ans.consumed)
