"""E1 + E2: reproduce Figure 1 (the NGC database instance) and Figure 2
(the November query answer), and bench the query evaluator as the
database scales.

Paper artifact: Figures 1 and 2 of Section 5.1.1.
Expected: the query answer equals Figure 2 tuple-for-tuple; evaluation
scales roughly linearly in instance size for this select-project-join.
"""

import random

import pytest

from repro.rtdb import (
    DatabaseInstance,
    DatabaseSchema,
    RelationSchema,
    figure2_query,
    ngc_example,
)

FIGURE_2 = {
    ("Schaefer", "St. Catharines"),
    ("Aelbrecht", "Hamilton"),
    ("Dieric", "Hamilton"),
}


def test_e1_figure1_instance(benchmark, report):
    """E1: building the Figure 1 instance, verified against the paper."""
    db = benchmark(ngc_example)
    assert len(db["Exhibitions"]) == 6
    assert len(db["Schedules"]) == 3
    report.add(relation="Exhibitions", tuples=len(db["Exhibitions"]), paper=6)
    report.add(relation="Schedules", tuples=len(db["Schedules"]), paper=3)


def test_e2_figure2_query(benchmark, report):
    """E2: the paper's query on the paper's instance."""
    db = ngc_example()
    q = figure2_query()
    result = benchmark(q.evaluate, db)
    got = {r.values for r in result}
    assert got == FIGURE_2
    for artist, city in sorted(got):
        report.add(Artist=artist, City=city, in_paper_fig2=True)


def _scaled_db(n_rows: int, seed: int = 0) -> DatabaseInstance:
    """The NGC schema filled with n_rows synthetic exhibitions."""
    rng = random.Random(seed)
    exhibitions = RelationSchema("Exhibitions", ("Title", "Description", "Artist"))
    schedules = RelationSchema("Schedules", ("City", "Title", "Date"))
    db = DatabaseInstance(DatabaseSchema([exhibitions, schedules]))
    months = ["October 1999", "November 1999", "December 1999"]
    for i in range(n_rows):
        title = f"show-{i % (n_rows // 3 + 1)}"
        db.insert("Exhibitions", (title, f"desc-{i}", f"artist-{i}"))
        db.insert("Schedules", (f"city-{i % 17}", title, rng.choice(months)))
    return db


@pytest.mark.parametrize("n_rows", [100, 1000, 5000])
def test_e2_query_scaling(benchmark, report, n_rows):
    """Data complexity: fixed query, growing instance (Section 5.1.1)."""
    db = _scaled_db(n_rows)
    q = figure2_query()
    result = benchmark(q.evaluate, db)
    report.add(rows=n_rows, answer_size=len(result))
    assert len(result) > 0
