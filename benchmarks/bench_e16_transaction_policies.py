"""E16 (extension): transaction scheduling policies under load.

The §5.1.2 deadline dimension the paper cites through Lehr–Kim–Son
[24]: transactions contending for the database under FIFO vs EDF vs
LSF.  We sweep the load factor (total work / available time) and report
deadline-miss rates.

Expected shape: all policies meet everything under light load; as load
approaches and passes 1, FIFO's miss rate rises first and stays highest
— EDF/LSF dominate it at every load level (the classic scheduling
result, reproduced on our kernel).
"""

import random

import pytest

from repro.deadlines import DeadlineKind
from repro.rtdb import Policy, Transaction, run_workload


def make_workload(load: float, n: int = 40, seed: int = 0):
    """n transactions over a window sized so that total work/window =
    load.  Deadlines are release + work·slack with mixed tightness."""
    rng = random.Random(seed)
    works = [rng.randint(2, 8) for _ in range(n)]
    window = max(1, int(sum(works) / load))
    txns = []
    for i, work in enumerate(works):
        release = rng.randint(0, window)
        slack = rng.choice((2, 3, 6))
        txns.append(
            Transaction(
                name=f"t{i}",
                release=release,
                work=work,
                deadline=release + work * slack,
                kind=DeadlineKind.SOFT if i % 4 == 0 else DeadlineKind.FIRM,
            )
        )
    return txns


def test_e16_policy_miss_rates(once, report):
    def sweep():
        table = {}
        for load in (0.3, 0.7, 1.0, 1.3):
            for policy in Policy:
                rates = []
                for seed in range(5):
                    out = run_workload(policy, make_workload(load, seed=seed))
                    rates.append(out.miss_rate)
                mean = sum(rates) / len(rates)
                table[(policy, load)] = mean
                report.add(load=load, policy=policy.value,
                           miss_rate=round(mean, 3))
        # shape: EDF never worse than FIFO on average, gap widens with load
        for load in (0.7, 1.0, 1.3):
            assert table[(Policy.EDF, load)] <= table[(Policy.FIFO, load)] + 1e-9
        assert table[(Policy.EDF, 0.3)] <= 0.2
        return table

    once(sweep)


@pytest.mark.parametrize("policy", list(Policy))
def test_e16_scheduling_cost(benchmark, policy):
    workload = make_workload(load=1.0, n=60, seed=1)

    def run():
        return run_workload(policy, [
            Transaction(t.name, t.release, t.work, t.deadline, t.kind)
            for t in workload
        ])

    out = benchmark(run)
    assert len(out.results) == 60
