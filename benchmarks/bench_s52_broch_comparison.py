"""E11: the Broch et al. [12] routing comparison, regenerated.

The paper maps [12]'s three measures onto R_{n,u}: routing overhead
(f+g), path optimality, delivery ratio.  We sweep pause time (the
mobility knob: 0 = constant motion) for four protocols on a Broch-style
arena and print the series.

Expected *shapes* (who wins, not absolute numbers — we run a simulator,
not their ns-2 testbed):

* flooding: delivery ≈ 1 and path excess ≈ 0 at every pause time, at
  the largest *data* overhead;
* DSDV-like proactive: control overhead roughly constant in pause time
  (beacons never stop); delivery suffers at high mobility (stale
  routes);
* DSR-like reactive: control overhead *decreases* as pause time grows
  (fewer re-discoveries) and sits below DSDV's steady beacon bill for
  the same traffic;
* delivery ratio weakly improves with pause time for the table-driven
  protocols.
"""

import pytest

from repro.adhoc import (
    AodvRouter,
    Arena,
    DreamRouter,
    DsdvRouter,
    DsrRouter,
    FloodingRouter,
    Scenario,
    run_scenario,
)

PAUSES = (0, 60, 300)
SEEDS = (3, 5, 11)

PROTOCOLS = {
    "flooding": lambda: FloodingRouter(ttl=16),
    "dsdv": lambda: DsdvRouter(beacon_period=15),
    "dsr": lambda: DsrRouter(),
    "aodv": lambda: AodvRouter(),
    "dream": lambda: DreamRouter(beacon_period=30, beacon_scope=2),
}


def _scenario(pause, seed):
    return Scenario(
        n_nodes=14,
        arena=Arena(800.0, 300.0),
        radio_range=250.0,
        pause_time=pause,
        n_messages=8,
        message_window=(60, 200),
        horizon=320,
        seed=seed,
    )


def _aggregate(name, pause):
    rows = []
    for seed in SEEDS:
        run = run_scenario(PROTOCOLS[name], _scenario(pause, seed))
        rows.append(run.metrics)
    n = len(rows)
    return {
        "delivery": sum(m.delivery_ratio for m in rows) / n,
        "overhead": sum(m.overhead for m in rows) / n,
        "control": sum(m.control_hops for m in rows) / n,
        "data": sum(m.data_hops for m in rows) / n,
        "excess": sum(
            (m.mean_path_excess or 0.0) for m in rows
        ) / n,
    }


def test_e11_comparison_table(once, report):
    def sweep():
        table = {}
        for name in PROTOCOLS:
            for pause in PAUSES:
                agg = _aggregate(name, pause)
                table[(name, pause)] = agg
                report.add(
                    protocol=name,
                    pause=pause,
                    delivery=round(agg["delivery"], 2),
                    overhead=round(agg["overhead"]),
                    control=round(agg["control"]),
                    data=round(agg["data"]),
                    path_excess=round(agg["excess"], 2),
                )
        # -- the [12] shape assertions --------------------------------
        for pause in PAUSES:
            # flooding delivers essentially everything, near-optimally
            assert table[("flooding", pause)]["delivery"] >= 0.85
            assert table[("flooding", pause)]["excess"] <= 0.6
            # flooding's data overhead dominates everyone's data traffic
            for other in ("dsdv", "dsr", "aodv"):
                assert (
                    table[("flooding", pause)]["data"]
                    > table[(other, pause)]["data"]
                )
            # proactive DSDV pays more control than the reactive pair
            for reactive in ("dsr", "aodv"):
                assert (
                    table[("dsdv", pause)]["control"]
                    > table[(reactive, pause)]["control"] * 0.8
                )
        # DSR's control bill shrinks as mobility drops (fewer rediscoveries)
        assert (
            table[("dsr", PAUSES[-1])]["control"]
            <= table[("dsr", 0)]["control"] * 1.5
        )
        return table

    once(sweep)


@pytest.mark.parametrize("name", list(PROTOCOLS))
def test_e11_protocol_run_cost(benchmark, name):
    """Wall-clock cost of one full scenario per protocol."""
    sc = _scenario(pause=60, seed=3)
    run = benchmark(run_scenario, PROTOCOLS[name], sc)
    assert run.metrics.messages == 8
