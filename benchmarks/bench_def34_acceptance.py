"""E14: Definition 3.4 acceptance — decision procedures and their cost.

Design-choice ablation (DESIGN.md §5.1): two ways to judge "infinitely
many f on the output tape":

* **absorbing-verdict** (the paper's own acceptors): run until s_f/s_r
  is declared — O(decision point), independent of any horizon;
* **prefix f-counting**: run a fixed horizon and count f's — cost grows
  linearly with the horizon, and the answer is only horizon-confident.

Expected shape: absorbing-verdict decision time is flat as the horizon
grows; f-counting scales linearly; both agree on every instance.
Also benches Büchi lasso acceptance (the automaton-side counterpart)
for growing cycle lengths.

Both procedures are engine strategies now (``lasso-exact`` /
``long-prefix-empirical``); this bench exercises them through
:func:`repro.engine.decide`, the path every domain judge uses.
"""

import pytest
from conftest import quick_sized

from repro.automata import BuchiAutomaton, LassoWord
from repro.engine import decide
from repro.machine import RealTimeAlgorithm
from repro.words import TimedWord

HORIZONS = quick_sized([100, 1_000, 10_000], [100, 1_000])
AGREE_NS = quick_sized((8, 16, 64), (8, 16))
AGREE_HORIZON = quick_sized(5_000, 1_000)
CYCLE_LENS = quick_sized([2, 8, 32], [2, 8])


def make_word(n: int, member: bool):
    """Accept iff the header block of n symbols sums to an even value."""
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


@pytest.mark.parametrize("horizon", HORIZONS)
def test_e14_absorbing_verdict_flat_in_horizon(benchmark, report, horizon):
    word = make_word(32, member=True)
    acceptor = make_acceptor()

    def judge():
        return decide(acceptor, word, horizon=horizon, strategy="lasso-exact")

    rep = benchmark(judge)
    assert rep.accepted
    report.add(horizon=horizon, decided_at=rep.decided_at, f=rep.f_count)


@pytest.mark.parametrize("horizon", HORIZONS)
def test_e14_prefix_counting_linear_in_horizon(benchmark, report, horizon):
    word = make_word(32, member=True)
    acceptor = make_acceptor()

    def count():
        return decide(
            acceptor, word, horizon=horizon, strategy="long-prefix-empirical"
        )

    rep = benchmark(count)
    assert rep.f_count > 0
    report.add(horizon=horizon, f=rep.f_count)


def test_e14_judges_agree(once, report):
    def sweep():
        for n in AGREE_NS:
            for member in (True, False):
                word = make_word(n, member)
                a = decide(make_acceptor(), word, horizon=AGREE_HORIZON)
                b = decide(
                    make_acceptor(),
                    word,
                    horizon=AGREE_HORIZON,
                    strategy="long-prefix-empirical",
                )
                agree = a.accepted == b.accepted
                report.add(n=n, member=member, verdict=a.verdict.value,
                           f_count=b.f_count, agree=agree)
                assert agree and a.accepted == member

    once(sweep)


@pytest.mark.parametrize("cycle_len", CYCLE_LENS)
def test_e14_buchi_lasso_acceptance_cost(benchmark, report, cycle_len):
    """The automaton-side judge: Büchi acceptance of u·vω."""
    buchi = BuchiAutomaton(
        "ab",
        ["s", "t"],
        "s",
        [("s", "t", "a"), ("s", "s", "b"), ("t", "t", "a"), ("t", "s", "b")],
        ["t"],
    )
    word = LassoWord("b" * 10, "ab" * (cycle_len // 2) or "ab")
    accepted = benchmark(buchi.accepts_lasso, word)
    assert accepted
    report.add(cycle_len=cycle_len, accepted=accepted)
