"""Resilience layer: recovery latency and degraded-mode throughput.

Three fault regimes, timed:

* **mux failover** — a supervised `SessionMux` carrying hundreds of
  sessions is crashed mid-stream and rebuilt from its latest
  checkpoint plus journal replay; the row records the wall-clock
  recovery latency and pins agreement with an uninterrupted run;
* **kill recovery** — a pooled `decide_many_resilient` sweep loses a
  SIGKILLed worker mid-chunk and still returns reports bit-identical
  to the serial path; the row separates clean-pool from
  faulted-pool throughput (the price of one retry);
* **degraded throughput** — transient worker exceptions force retries;
  words/sec with faults injected vs the clean pool;
* **shard kill recovery** — one worker of a loaded
  :class:`repro.shard.ShardRouter` is SIGKILLed and rebuilt from its
  per-shard checkpoint+journal; the row records the respawn+replay
  latency and pins verdict identity with an uninterrupted run.

Rows land in the ``--bench-json`` capture (``BENCH_resilience.json``;
the `resilience-smoke` CI job asserts the failover row).  Set
``REPRO_BENCH_QUICK=1`` for CI-sized parameters.
"""

import random
import time

from conftest import quick_sized

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import (
    CrashingAcceptor,
    FailingAcceptor,
    FileFuse,
    RetryPolicy,
    decide_many,
    decide_many_resilient,
)
from repro.kernel import Le
from repro.machine import RealTimeAlgorithm
from repro.stream import MuxSupervisor, SessionMux
from repro.words import TimedWord

N_SESSIONS = quick_sized(300, 50)
N_EVENTS = quick_sized(6_000, 1_000)
N_WORDS = quick_sized(48, 12)
HORIZON = quick_sized(2_000, 1_000)
FAST_RETRY = RetryPolicy(max_retries=3, backoff_base=0.005, backoff_cap=0.05)


def bounded_gap_tba(bound=3):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def traffic(sessions, events, seed=11):
    rng = random.Random(seed)
    clock = {f"s{i}": 0 for i in range(sessions)}
    names = list(clock)
    out = []
    for _ in range(events):
        name = rng.choice(names)
        clock[name] += rng.choice([1, 2, 3, 3, 5])
        out.append((name, "a", clock[name]))
    return out


def make_parity_word(n, member):
    total_parity = 0 if member else 1
    syms = [1] * n
    if sum(syms) % 2 != total_parity:
        syms[0] = 2
    pairs = [(n, 0)] + [(s, i + 1) for i, s in enumerate(syms)]
    return TimedWord.lasso(pairs, [("w", n + 2)], shift=1)


def make_parity_acceptor():
    def prog(ctx):
        n, _t = yield ctx.input.read()
        total = 0
        for _ in range(n):
            v, _t = yield ctx.input.read()
            total += v
        if total % 2 == 0:
            ctx.accept()
        else:
            ctx.reject()

    return RealTimeAlgorithm(prog)


def parity_sweep(n_words):
    sizes = (4, 8, 16)
    return [
        make_parity_word(sizes[i % len(sizes)], i % 2 == 0)
        for i in range(n_words)
    ]


def test_mux_failover_recovery_latency(once, report, bench_record):
    """Crash a loaded supervised mux; time the checkpoint+journal rebuild."""
    tba = bounded_gap_tba()
    factory = lambda: SessionMux(  # noqa: E731
        tba, lateness=2, late_policy="drop", buffer_limit=16,
        drop_policy="drop-old",
    )
    events = traffic(N_SESSIONS, N_EVENTS)

    reference = factory()
    for name, sym, t in events:
        reference.ingest(name, sym, t)

    def run():
        # 256 does not divide either event count, so the crash lands
        # with a non-empty journal and recovery times a real replay
        supervisor = MuxSupervisor(factory, checkpoint_every=256, tba=tba)
        t0 = time.perf_counter()
        for name, sym, t in events:
            supervisor.ingest(name, sym, t)
        ingest_s = time.perf_counter() - t0
        journal_depth = len(supervisor.journal)
        supervisor.crash()
        recovery_s = supervisor.recover()
        assert supervisor.verdicts() == reference.verdicts()
        return ingest_s, recovery_s, journal_depth

    ingest_s, recovery_s, journal_depth = once(run)
    eps = round(N_EVENTS / max(ingest_s, 1e-9), 1)
    bench_record(
        mode="failover",
        sessions=N_SESSIONS,
        events=N_EVENTS,
        journal_depth=journal_depth,
        recovery_ms=round(recovery_s * 1e3, 3),
        supervised_events_per_sec=eps,
        recovered=True,
    )
    report.add(
        sessions=N_SESSIONS,
        events=N_EVENTS,
        recovery_ms=round(recovery_s * 1e3, 3),
        events_per_sec=eps,
    )


def test_kill_recovery_bit_identical(once, report, bench_record, tmp_path):
    """One SIGKILLed worker: recovery cost vs the clean pool."""
    acceptor = make_parity_acceptor()
    words = parity_sweep(N_WORDS)
    serial = decide_many(acceptor, words, horizon=HORIZON, seed=5)

    def run():
        t0 = time.perf_counter()
        clean = decide_many_resilient(
            acceptor, words, horizon=HORIZON, workers=4, seed=5,
            retry=FAST_RETRY,
        )
        t1 = time.perf_counter()
        fuse = FileFuse(shots=1, path=str(tmp_path / "kill-fuse"))
        crashy = CrashingAcceptor(acceptor, fuse)
        faulted = decide_many_resilient(
            crashy, words, horizon=HORIZON, workers=4, seed=5,
            retry=FAST_RETRY,
        )
        t2 = time.perf_counter()
        assert clean.reports == serial
        assert faulted.reports == serial  # survived the kill, bit-identical
        assert faulted.worker_deaths == 1
        return t1 - t0, t2 - t1

    clean_s, faulted_s = once(run)
    bench_record(
        mode="kill-recovery",
        words=N_WORDS,
        workers=4,
        clean_words_per_sec=round(N_WORDS / max(clean_s, 1e-9), 1),
        faulted_words_per_sec=round(N_WORDS / max(faulted_s, 1e-9), 1),
        recovered=True,
    )
    report.add(
        clean_s=round(clean_s, 4),
        faulted_s=round(faulted_s, 4),
        identical=True,
    )


def test_degraded_mode_throughput(once, report, bench_record, tmp_path):
    """Transient exceptions: retried words/sec vs the clean pool."""
    acceptor = make_parity_acceptor()
    words = parity_sweep(N_WORDS)
    serial = decide_many(acceptor, words, horizon=HORIZON, seed=5)
    shots = quick_sized(6, 2)

    def run():
        t0 = time.perf_counter()
        clean = decide_many_resilient(
            acceptor, words, horizon=HORIZON, workers=4, seed=5,
            retry=FAST_RETRY,
        )
        t1 = time.perf_counter()
        fuse = FileFuse(shots=shots, path=str(tmp_path / "flaky-fuse"))
        flaky = FailingAcceptor(acceptor, fuse)
        degraded = decide_many_resilient(
            flaky, words, horizon=HORIZON, workers=4, seed=5,
            retry=FAST_RETRY,
        )
        t2 = time.perf_counter()
        assert clean.reports == serial
        assert degraded.reports == serial
        assert degraded.retries >= 1
        return t1 - t0, t2 - t1, None

    clean_s, degraded_s, _ = once(run)
    clean_wps = round(N_WORDS / max(clean_s, 1e-9), 1)
    degraded_wps = round(N_WORDS / max(degraded_s, 1e-9), 1)
    bench_record(
        mode="degraded-throughput",
        words=N_WORDS,
        workers=4,
        faults_injected=shots,
        clean_words_per_sec=clean_wps,
        degraded_words_per_sec=degraded_wps,
    )
    report.add(
        faults=shots, clean_wps=clean_wps, degraded_wps=degraded_wps
    )


def test_shard_kill_recovery_latency(once, report, bench_record):
    """SIGKILL one shard of a loaded ShardRouter; time respawn+replay.

    The per-shard analogue of the mux failover row: the dead worker is
    rebuilt from its last checkpoint plus its journal, and the rebuilt
    pool's verdicts must match an uninterrupted single-mux run
    verdict-for-verdict.
    """
    from repro.shard import ShardRouter

    tba = bounded_gap_tba()
    events = traffic(N_SESSIONS, N_EVENTS)
    reference = SessionMux(tba)
    reference.ingest_batch(events)
    split = (len(events) * 2) // 3

    def run():
        with ShardRouter(tba, n_shards=3, batch_events=128) as router:
            router.ingest_batch(events[:split])
            router.checkpoint()
            router.ingest_batch(events[split:])
            router.sync()
            victim = router.shard_ids[1]
            journal_depth = len(router._shards[victim].journal)
            router.crash(victim)
            recovery_s = router.recover(victim)
            assert router.verdicts() == reference.verdicts()
        return recovery_s, journal_depth

    recovery_s, journal_depth = once(run)
    bench_record(
        mode="shard-kill-recovery",
        sessions=N_SESSIONS,
        events=N_EVENTS,
        shards=3,
        journal_depth=journal_depth,
        recovery_ms=round(recovery_s * 1e3, 3),
        recovered=True,
    )
    report.add(
        sessions=N_SESSIONS,
        events=N_EVENTS,
        journal_depth=journal_depth,
        recovery_ms=round(recovery_s * 1e3, 3),
    )
