"""Online monitoring throughput: events/sec, fan-in, and the ablation.

Three regimes over :mod:`repro.stream`, each measured on both stepping
paths so the compiled-vs-interpreted speedup is a committed artifact
(``docs/performance.md`` reads these rows):

* **single-session** — raw ingest throughput of one monitor:
  ``single-session-tba`` is the interpreted :class:`TBAMonitor`
  baseline (``compiled=False``, per-event dict stepping),
  ``single-session-tba-compiled`` the same events through the
  :class:`~repro.stream.compiled.CompiledTBA` bulk scan
  (``ingest_many``), and ``single-session-machine`` the machine-hosted
  :class:`Monitor` pumping a private simulator (the exact-agreement
  path, paying kernel events);
* **multiplexed** — one :class:`SessionMux` sustaining hundreds of
  concurrent sessions (the bounded-memory demo: per-session reorder
  buffers stay under ``buffer_limit``, the per-language analysis is
  shared): ``multiplexed`` replays the timestamp-ordered merge one
  event at a time into interpreted monitors, ``multiplexed-compiled``
  feeds the same merge in chunks through
  :meth:`~repro.stream.session.SessionMux.ingest_batch`;
* **online-vs-batch ablation** — ``engine.decide`` under
  ``"online-incremental"`` vs ``"lasso-exact"``: the per-event overhead
  the incremental path pays for never having to see the whole word.

Events/sec per regime land in the ``--bench-json`` capture
(``BENCH_stream.json`` in the repo root).  Set ``REPRO_BENCH_QUICK=1``
for CI-sized parameters (the stream-smoke CI job does).
"""

import time

import pytest
from conftest import quick_sized

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import compiled_tba, decide
from repro.kernel import Le
from repro.stream import (
    Monitor,
    SessionMux,
    StreamVerdict,
    TBAMonitor,
    analysis_for,
    checkpoint,
    compiled_for,
    replay_into_mux,
    restore,
)
from repro.words import TimedWord

N_EVENTS = quick_sized(2_000, 500)
N_SESSIONS = quick_sized(500, 200)
MUX_UNTIL = quick_sized(60, 30)
ABLATION_HORIZON = quick_sized(400, 200)
BUFFER_LIMIT = 16


def bounded_gap_tba(bound=2):
    """Deterministic TBA: every inter-arrival gap ≤ bound."""
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


TBA = bounded_gap_tba()
ANALYSIS = analysis_for(TBA)
EVENTS = [("a", t) for t in range(1, N_EVENTS + 1)]


def steady_word():
    return TimedWord.lasso([], [("a", 1)], shift=1)


def stalling_word():
    return TimedWord.lasso([("a", 1), ("a", 10)], [("a", 11)], shift=1)


def test_single_session_tba_events_per_sec(benchmark, report, bench_record):
    """The interpreted baseline: per-event configuration stepping."""

    def ingest_all():
        monitor = TBAMonitor(TBA, analysis=ANALYSIS, compiled=False)
        for symbol, t in EVENTS:
            monitor.ingest(symbol, t)
        return monitor

    monitor = benchmark(ingest_all)
    assert monitor.verdict is StreamVerdict.ACCEPTING
    assert monitor.events_released == N_EVENTS
    eps = round(N_EVENTS / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode="single-session-tba", events=N_EVENTS, events_per_sec=eps)
    report.add(monitor="TBAMonitor", events=N_EVENTS, eps=eps)


def test_single_session_tba_compiled_events_per_sec(
    benchmark, report, bench_record
):
    """The compiled path: the same events through the bulk table scan."""
    if compiled_for(ANALYSIS) is None:
        pytest.skip("compiled stepping unavailable (numpy absent/disabled)")

    def ingest_all():
        monitor = TBAMonitor(TBA, analysis=ANALYSIS, compiled=True)
        monitor.ingest_many(EVENTS)
        return monitor

    monitor = benchmark(ingest_all)
    assert monitor.verdict is StreamVerdict.ACCEPTING
    assert monitor.events_released == N_EVENTS
    eps = round(N_EVENTS / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(
        mode="single-session-tba-compiled", events=N_EVENTS, events_per_sec=eps
    )
    report.add(monitor="TBAMonitor[compiled]", events=N_EVENTS, eps=eps)


def test_single_session_machine_events_per_sec(benchmark, report, bench_record):
    """The exact-agreement path: a private simulator pumped per event."""
    acceptor = compiled_tba(TBA)

    def ingest_all():
        monitor = Monitor(acceptor)
        for symbol, t in EVENTS:
            monitor.ingest(symbol, t)
        return monitor

    monitor = benchmark(ingest_all)
    assert monitor.verdict is StreamVerdict.ACCEPTING
    assert monitor.f_count == N_EVENTS  # one f per accepting visit
    eps = round(N_EVENTS / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode="single-session-machine", events=N_EVENTS, events_per_sec=eps)
    report.add(monitor="Monitor", events=N_EVENTS, eps=eps)


def _fleet():
    return {
        f"s{i:04d}": stalling_word() if i % 10 == 9 else steady_word()
        for i in range(N_SESSIONS)
    }


def _check_and_record(mode, mux, verdicts, elapsed, report, bench_record):
    stats = mux.stats()
    rejected = sum(1 for v in verdicts.values() if v is StreamVerdict.REJECTED)
    events = sum(s.monitor.events_ingested for s in mux._sessions.values())
    eps = round(events / max(elapsed, 1e-9), 1)
    # bounded memory: every session's reorder buffer under the limit,
    # session table exactly the fleet
    assert N_SESSIONS >= 200
    assert stats["active"] == N_SESSIONS
    assert all(s.monitor.pending <= BUFFER_LIMIT for s in mux._sessions.values())
    assert rejected == N_SESSIONS // 10  # exactly the stalling streams
    bench_record(
        mode=mode,
        sessions=N_SESSIONS,
        events=events,
        events_per_sec=eps,
        pending_total=stats["pending_total"],
    )
    report.add(sessions=N_SESSIONS, events=events, eps=eps, rejected=rejected)


def test_mux_sustains_concurrent_sessions(once, report, bench_record):
    """The ≥200-session fan-in with bounded memory, timestamp-merged."""
    fleet = _fleet()

    def drive():
        mux = SessionMux(
            TBA,
            buffer_limit=BUFFER_LIMIT,
            drop_policy="drop-new",
            compiled=False,
        )
        t0 = time.perf_counter()
        verdicts = replay_into_mux(mux, fleet, until=MUX_UNTIL)
        return mux, verdicts, time.perf_counter() - t0

    mux, verdicts, elapsed = once(drive)
    _check_and_record(
        "multiplexed", mux, verdicts, elapsed, report, bench_record
    )


def test_mux_batched_compiled_sessions(once, report, bench_record):
    """The same fan-in, chunked through vectorized ``ingest_batch``."""
    if compiled_for(ANALYSIS) is None:
        pytest.skip("compiled stepping unavailable (numpy absent/disabled)")
    fleet = _fleet()

    def drive():
        mux = SessionMux(
            TBA, buffer_limit=BUFFER_LIMIT, drop_policy="drop-new"
        )
        t0 = time.perf_counter()
        verdicts = replay_into_mux(mux, fleet, until=MUX_UNTIL, batch=4096)
        return mux, verdicts, time.perf_counter() - t0

    mux, verdicts, elapsed = once(drive)
    _check_and_record(
        "multiplexed-compiled", mux, verdicts, elapsed, report, bench_record
    )


@pytest.mark.parametrize("strategy", ["lasso-exact", "online-incremental"])
def test_online_vs_batch_ablation(benchmark, report, bench_record, strategy):
    """What the incremental path costs relative to the batch loop."""
    acceptor = compiled_tba(TBA)
    words = [steady_word() if i % 2 == 0 else stalling_word() for i in range(8)]

    def judge_all():
        return [
            decide(acceptor, w, horizon=ABLATION_HORIZON, strategy=strategy)
            for w in words
        ]

    reports = benchmark(judge_all)
    assert [r.accepted for r in reports] == [False] * 8  # REJECT or UNDECIDED
    assert [r.verdict.value for r in reports] == ["undecided", "reject"] * 4
    wps = round(len(words) / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode=f"ablation:{strategy}", words=len(words), words_per_sec=wps)
    report.add(strategy=strategy, horizon=ABLATION_HORIZON, wps=wps)


def test_checkpoint_round_trip_cost(benchmark, report, bench_record):
    """Snapshot+restore of a live TBA session (the O(state) claim)."""
    monitor = TBAMonitor(TBA, analysis=ANALYSIS)
    for symbol, t in EVENTS:
        monitor.ingest(symbol, t)

    def round_trip():
        return restore(checkpoint(monitor), tba=TBA, analysis=ANALYSIS)

    resumed = benchmark(round_trip)
    assert resumed.verdict is monitor.verdict
    assert resumed.configs == monitor.configs
    rps = round(1 / max(benchmark.stats.stats.mean, 1e-9), 1)
    bench_record(mode="checkpoint-round-trip", events_behind=N_EVENTS,
                 round_trips_per_sec=rps)
    report.add(events_behind=N_EVENTS, round_trips_per_sec=rps)
