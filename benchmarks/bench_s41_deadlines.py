"""E5: Section 4.1 — computing with deadlines.

Sweeps deadline kind × deadline position across a matrix of instances
and verifies the acceptor's decision equals the oracle on 100% of them
(the paper's construction is exact, so any disagreement is a bug).
The timing target is one full encode+decide round trip.

Expected shape: accept ⟺ completion < t_d (firm) or u(completion) ≥
min acceptable (soft); the acceptance frontier moves right as t_d
grows.
"""

import pytest

from repro.deadlines import (
    DeadlineInstance,
    DeadlineKind,
    DeadlineSpec,
    HyperbolicUsefulness,
    decide_instance,
    encode_instance,
    sorting_problem,
)

PROBLEM = sorting_problem(time_per_item=2)


def _instance(n, kind, t_d=None, min_acc=1):
    data = tuple((7 * i) % 23 for i in range(n))
    if kind is DeadlineKind.NONE:
        spec = DeadlineSpec(kind)
    elif kind is DeadlineKind.FIRM:
        spec = DeadlineSpec(kind, t_d=t_d, min_acceptable=min_acc)
    else:
        spec = DeadlineSpec(
            kind,
            t_d=t_d,
            usefulness=HyperbolicUsefulness(max_value=10, t_d=t_d),
            min_acceptable=min_acc,
        )
    return DeadlineInstance(PROBLEM, data, tuple(sorted(data)), spec)


def test_e5_decision_matrix(once, report):
    """The acceptance frontier across kinds and deadlines (n = 8,
    completion at t = 16)."""

    def sweep():
        mismatches = 0
        for kind in (DeadlineKind.FIRM, DeadlineKind.SOFT):
            for t_d in (5, 10, 16, 17, 20, 40):
                inst = _instance(8, kind, t_d=t_d, min_acc=2)
                rep = decide_instance(inst)
                oracle = inst.oracle()
                if rep.accepted != oracle:
                    mismatches += 1
                report.add(
                    kind=kind.value,
                    t_d=t_d,
                    completion=inst.completion_time(),
                    oracle=oracle,
                    acceptor=rep.accepted,
                )
        return mismatches

    assert once(sweep) == 0


@pytest.mark.parametrize("kind", [DeadlineKind.NONE, DeadlineKind.FIRM, DeadlineKind.SOFT])
def test_e5_roundtrip_cost(benchmark, kind):
    """Encode + accept one instance (n = 16)."""
    inst = _instance(16, kind, t_d=40)

    def roundtrip():
        return decide_instance(inst)

    rep = benchmark(roundtrip)
    assert rep.accepted == inst.oracle()


@pytest.mark.parametrize("n", [8, 32, 128])
def test_e5_encoding_cost(benchmark, report, n):
    """Word construction cost as the instance grows."""
    inst = _instance(n, DeadlineKind.FIRM, t_d=1000)
    word = benchmark(encode_instance, inst)
    report.add(n=n, prefix_len=len(word.prefix))
