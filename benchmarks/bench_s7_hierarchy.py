"""E13: the rt-PROC hierarchy experiment (Sections 3.2 and 7).

"Given any number k of processors, is there a well-behaved timed
ω-language that can be accepted by a k-processor real-time algorithm
but cannot be accepted by a (k−1)-processor one?"

Expected shape: on the k-stream echo family the success matrix splits
exactly on the diagonal (success ⟺ p ≥ k), and the first-miss times of
under-provisioned systems match the closed form D·k/(k−p) + 2.
"""

import pytest

from repro.complexity import (
    hierarchy_matrix,
    predicted_first_miss,
    run_stream_echo,
    stream_word,
)
from repro.words import Trilean

DEADLINE = 8
K_MAX = 8


def test_e13_hierarchy_matrix(once, report):
    def sweep():
        matrix = hierarchy_matrix(K_MAX, deadline=DEADLINE, horizon=2_000)
        for k in range(1, K_MAX + 1):
            row = {"k": k}
            for p in range(1, K_MAX + 1):
                r = matrix[(k, p)]
                row[f"p{p}"] = "ok" if r.success else f"@{r.first_miss}"
                assert r.success == (p >= k)
            report.add(**row)
        return matrix

    once(sweep)


def test_e13_first_miss_closed_form(once, report):
    def sweep():
        for k in range(2, K_MAX + 1):
            for p in range(1, k):
                r = run_stream_echo(k, p, deadline=DEADLINE, horizon=2_000)
                predicted = predicted_first_miss(k, p, DEADLINE)
                report.add(k=k, p=p, measured=r.first_miss, predicted=predicted,
                           match=r.first_miss == predicted)
                assert r.first_miss == predicted

    once(sweep)


@pytest.mark.parametrize("k", [2, 4, 8, 16])
def test_e13_simulation_cost(benchmark, k):
    """Cost of one adequate-provisioning run (p = k)."""
    r = benchmark(run_stream_echo, k, k, DEADLINE, 2_000)
    assert r.success


def test_e13_stream_words_well_behaved(once, report):
    """The witness languages consist of well-behaved timed ω-words."""

    def check():
        for k in (1, 4, 16):
            w = stream_word(k)
            assert w.is_well_behaved() is Trilean.TRUE
            report.add(k=k, symbols_per_chronon=k,
                       well_behaved=str(w.is_well_behaved()))

    once(check)
