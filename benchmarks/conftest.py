"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench module regenerates one of the paper's artifacts (DESIGN.md
§4 maps experiment ids to modules).  The ``report`` fixture collects
printable rows so that running

    pytest benchmarks/ --benchmark-only -s

shows both the timing table (pytest-benchmark) and the reproduced
figure/table rows.

Observability capture: pass ``--obs-dir DIR`` (or set ``REPRO_OBS_DIR``)
to write, per benchmark, a Chrome trace (``<test>.trace.json``) and a
metrics snapshot (``<test>.metrics.json``) from the repro.obs hooks —
the attributable breakdown behind each ``BENCH_*.json`` timing number.
See docs/observability.md.

Machine-readable summary: pass ``--bench-json PATH`` (or set
``REPRO_BENCH_JSON``) to write one JSON document with a row per
benchmark — wall time, kernel events dispatched, and any rows the test
recorded through the ``bench_record`` fixture (the engine batch bench
uses it for serial-vs-batched words/sec).  ``BENCH_engine.json`` in the
repo root is such a capture.
"""

import json
import os
import re
import time
from typing import Dict, List

import pytest

from repro.obs import Instrumentation, export, hooks


#: CI sizing knob: REPRO_BENCH_QUICK=1 shrinks every parameter sweep to
#: smoke-test scale (the bench-smoke / stream-smoke CI jobs set it).
BENCH_QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


def quick_sized(full, quick):
    """Pick the CI-sized variant of a sweep parameter under
    REPRO_BENCH_QUICK=1, the full-sized one otherwise.

    Bench modules import this (``from conftest import quick_sized`` —
    pytest puts benchmarks/ on sys.path) so every long-running sweep
    shares one sizing switch instead of a private ``QUICK`` flag.
    """
    return quick if BENCH_QUICK else full


def pytest_addoption(parser):
    parser.addoption(
        "--obs-dir",
        default=os.environ.get("REPRO_OBS_DIR") or None,
        help="capture a repro.obs trace + metrics snapshot per benchmark into this directory",
    )
    parser.addoption(
        "--bench-json",
        default=os.environ.get("REPRO_BENCH_JSON") or None,
        help="write a machine-readable per-benchmark summary (wall time, events, custom rows) to this path",
    )


#: Rows accumulated for --bench-json, keyed by test node name.
_BENCH_ROWS: List[Dict[str, object]] = []


@pytest.fixture(autouse=True)
def _bench_json_capture(request):
    """Per-test wall-time + kernel-event capture for --bench-json."""
    path = request.config.getoption("--bench-json")
    if not path:
        yield None
        return
    own = hooks.current() is None
    inst = hooks.install() if own else hooks.current()
    events_before = inst.registry.counter("kernel.events_dispatched").value
    row: Dict[str, object] = {"test": request.node.name, "records": []}
    request.node._bench_json_row = row
    start = time.perf_counter()
    try:
        yield row
    finally:
        row["wall_s"] = round(time.perf_counter() - start, 6)
        row["events_dispatched"] = (
            inst.registry.counter("kernel.events_dispatched").value - events_before
        )
        if own:
            hooks.uninstall()
        _BENCH_ROWS.append(row)


@pytest.fixture
def bench_record(request):
    """Record named measurements into the --bench-json row (no-op
    without the option), e.g. ``bench_record(mode="pool", wps=1234)``."""

    def record(**fields):
        row = getattr(request.node, "_bench_json_row", None)
        if row is not None:
            row["records"].append(fields)

    return record


def pytest_sessionfinish(session):
    path = session.config.getoption("--bench-json", default=None)
    if not path or not _BENCH_ROWS:
        return
    doc = {
        "suite": "benchmarks",
        "generated_by": "benchmarks/conftest.py --bench-json",
        "benchmarks": _BENCH_ROWS,
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(autouse=True)
def obs_capture(request):
    """Per-test repro.obs capture, active only with --obs-dir/REPRO_OBS_DIR."""
    obs_dir = request.config.getoption("--obs-dir")
    if not obs_dir:
        yield None
        return
    inst = Instrumentation()
    with hooks.instrumented(inst):
        yield inst
    os.makedirs(obs_dir, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    export.write_chrome_trace(
        os.path.join(obs_dir, f"{stem}.trace.json"), inst.spans, inst.registry
    )
    export.write_metrics(
        os.path.join(obs_dir, f"{stem}.metrics.json"), inst.registry
    )


class Report:
    """Accumulates and prints experiment rows."""

    def __init__(self, title: str):
        self.title = title
        self.rows: List[Dict[str, object]] = []

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def show(self) -> None:
        if not self.rows:
            return
        cols = list(self.rows[0].keys())
        widths = {
            c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in self.rows))
            for c in cols
        }
        print(f"\n== {self.title} ==")
        print("  ".join(str(c).ljust(widths[c]) for c in cols))
        for r in self.rows:
            print("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))


@pytest.fixture
def report(request):
    rep = Report(request.node.name)
    yield rep
    rep.show()


@pytest.fixture
def once(benchmark):
    """Run a whole-experiment body exactly once under the benchmark
    fixture (rounds=1), for sweeps too heavy to repeat but whose tables
    must appear in --benchmark-only runs."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
