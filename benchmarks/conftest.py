"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench module regenerates one of the paper's artifacts (DESIGN.md
§4 maps experiment ids to modules).  The ``report`` fixture collects
printable rows so that running

    pytest benchmarks/ --benchmark-only -s

shows both the timing table (pytest-benchmark) and the reproduced
figure/table rows.
"""

from typing import Dict, List

import pytest


class Report:
    """Accumulates and prints experiment rows."""

    def __init__(self, title: str):
        self.title = title
        self.rows: List[Dict[str, object]] = []

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def show(self) -> None:
        if not self.rows:
            return
        cols = list(self.rows[0].keys())
        widths = {
            c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in self.rows))
            for c in cols
        }
        print(f"\n== {self.title} ==")
        print("  ".join(str(c).ljust(widths[c]) for c in cols))
        for r in self.rows:
            print("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))


@pytest.fixture
def report(request):
    rep = Report(request.node.name)
    yield rep
    rep.show()


@pytest.fixture
def once(benchmark):
    """Run a whole-experiment body exactly once under the benchmark
    fixture (rounds=1), for sweeps too heavy to repeat but whose tables
    must appear in --benchmark-only runs."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
