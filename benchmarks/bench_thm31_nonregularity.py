"""E3: Theorem 3.1 / Corollary 3.2 — L_ω is not (timed) ω-regular.

Executable evidence: the fooling set {a bˣ | x ≤ N} is pairwise
L-inequivalent for every N we try, so any DFA for L needs > N states —
the state lower bound grows without bound.  The bench measures the
verification cost; the shape to reproduce is the *unbounded growth* of
the certified bound (column ``dfa_states_gt``).
"""

import pytest

from repro.automata import (
    dfa_state_lower_bound,
    l_membership,
    l_omega_word,
    l_word,
    minimal_states_for_bounded_l,
    verify_fooling_set,
)
from repro.words import Trilean


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_e3_fooling_set_growth(benchmark, report, n):
    """Certified DFA state lower bounds at growing N."""
    ok = benchmark(verify_fooling_set, n)
    assert ok
    report.add(N=n, dfa_states_gt=dfa_state_lower_bound(n), verified=ok)


@pytest.mark.parametrize("x_max", [2, 4, 8, 16])
def test_e3_minimal_dfa_growth(benchmark, report, x_max):
    """The mechanical witness: minimal DFAs for the bounded languages
    L_X = {aᵘbˣcᵛdˣ | x ≤ X} have exactly 3X + 3 states — linear,
    unbounded growth, so no finite machine covers all of L."""
    n_states = benchmark(minimal_states_for_bounded_l, x_max)
    assert n_states == 3 * x_max + 3
    report.add(X=x_max, minimal_dfa_states=n_states, closed_form=3 * x_max + 3)


def test_e3_membership_oracle(benchmark):
    """The L decision procedure itself (used by every certificate)."""
    word = l_word(20, 30, 25)
    assert benchmark(l_membership, word)


def test_e3_corollary32_timed_words(benchmark, report):
    """Corollary 3.2: the timed variant L′_ω — its words are
    well-behaved timed ω-words (attaching a progressing time sequence
    preserves everything)."""

    def build():
        return l_omega_word([(2, 3, 1), (1, 1, 4)], (1, 2, 1), period=2)

    w = benchmark(build)
    assert w.is_well_behaved() is Trilean.TRUE
    report.add(
        blocks="2 stem + 1 cycle",
        well_behaved=str(w.is_well_behaved()),
        first_symbols="".join(s for s, _t in w.take(10)),
    )
