"""E10: Section 5.2.4 — the routing-problem language R_{n,u}.

Validates simulated routing runs against the formal conditions 1–3 and
benches both the word construction (h₁…h_n m r …) and the validator as
the network scales.

Expected shape: flooding traces on static networks are in R_{n,u}
whenever delivery happens; validation cost grows with trace size;
the network word h₁…h_n is well-formed (monotone, progressing) at
every n.
"""

import pytest
from conftest import quick_sized

from repro.adhoc import (
    FloodingRouter,
    Scenario,
    network_word,
    routing_word,
    run_scenario,
    validate_route,
)
from repro.words import Trilean

MATRIX_NS = quick_sized((10, 30, 60), (10, 30))
VALIDATOR_NS = quick_sized([10, 50, 200], [10, 50])
WORD_NS = quick_sized([5, 20], [5])
NETWORK_WINDOW = quick_sized(400, 200)
ROUTING_WINDOW = quick_sized(600, 300)


def _run(n_nodes, seed=7):
    sc = Scenario(
        n_nodes=n_nodes,
        n_messages=5,
        horizon=200,
        seed=seed,
        stationary=True,
        pause_time=0,
    )
    return run_scenario(FloodingRouter, sc)


def test_e10_membership_matrix(once, report):
    def sweep():
        for n in MATRIX_NS:
            run = _run(n)
            delivered = in_lang = 0
            for m in run.messages:
                v = validate_route(run.range_pred, run.network.trace, m)
                if v.delivered:
                    delivered += 1
                    in_lang += v.in_language
            report.add(nodes=n, messages=len(run.messages),
                       delivered=delivered, in_R=in_lang)
            assert in_lang == delivered  # delivered ⟹ valid chain

    once(sweep)


@pytest.mark.parametrize("n_nodes", VALIDATOR_NS)
def test_e10_validator_cost(benchmark, report, n_nodes):
    run = _run(n_nodes)
    target = run.messages[0]

    def validate():
        return validate_route(run.range_pred, run.network.trace, target)

    v = benchmark(validate)
    report.add(nodes=n_nodes, hops_in_trace=len(run.network.trace.hops),
               delivered=v.delivered)


@pytest.mark.parametrize("n_nodes", WORD_NS)
def test_e10_network_word_construction(benchmark, report, n_nodes):
    """a_n = h₁…h_n: build and expand a window of the merged word."""
    run = _run(n_nodes)

    def build():
        w = network_word(run.range_pred)
        return w.take(NETWORK_WINDOW)

    pairs = benchmark(build)
    times = [t for _s, t in pairs]
    assert times == sorted(times)
    report.add(nodes=n_nodes, window=len(pairs), max_time=times[-1])


def test_e10_routing_word_well_formed(once, report):
    """The full routing word (network + m/r words) stays monotone."""

    def build():
        run = _run(8)
        w = routing_word(run.range_pred, run.network.trace, max_hops=10)
        pairs = w.take(ROUTING_WINDOW)
        times = [t for _s, t in pairs]
        assert times == sorted(times)
        report.add(nodes=8, embedded_hops=10, window=len(pairs))

    once(build)
