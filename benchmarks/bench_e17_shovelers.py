"""E17 (extension): the p-shovelers problem — parallelism as the
difference between success and failure (§7, via Luccio–Pagli [26, 27]).

Sweeps processor counts against arrival-law rates and reports the
success frontier plus termination-time speedups, from three artifacts:
the fluid capacity analysis, the exact strict recursion, and the kernel
simulation.

Expected shapes:
* β = 1, k < 1: any p terminates; adding shovelers shortens the
  backlog-drain phase (diminishing returns once the pile stays empty);
* β = 1, k ≥ 1: fluid catch-up exists for p > c·k but *strict*
  termination never occurs (no arrival gap) — the fluid/strict split
  this reproduction surfaced;
* the minimum fluid p matches ⌊c·k·n^γ⌋ + 1 exactly.
"""

import pytest

from repro.dataacc import (
    PolynomialArrivalLaw,
    PrefixSumSolver,
    minimum_processors,
    parallel_termination_time,
    run_parallel_dalgorithm,
    strict_parallel_termination_time,
)


def test_e17_success_frontier(once, report):
    def sweep():
        for k in (0.5, 0.9, 1.5, 2.5):
            law = PolynomialArrivalLaw(n=48, k=k, gamma=0.0, beta=1.0)
            for p in (1, 2, 4):
                fluid = parallel_termination_time(law, 1, p, horizon=20_000)
                strict = strict_parallel_termination_time(law, p, horizon=20_000)
                sim = run_parallel_dalgorithm(
                    PrefixSumSolver, law, data=lambda j: 1, p=p, horizon=20_000
                )
                report.add(
                    k=k, p=p,
                    fluid=fluid if fluid is not None else "DNF",
                    strict=strict if strict is not None else "DNF",
                    simulated=sim.termination_time if sim.terminated else "DNF",
                )
                assert sim.terminated == (strict is not None)
                if strict is not None:
                    assert sim.termination_time == strict
                # the fluid/strict split: gap-free laws (k ≥ 1) never
                # strictly terminate even when fluid catch-up exists
                if k >= 1:
                    assert strict is None
                elif fluid is not None:
                    assert strict is not None

    once(sweep)


def test_e17_minimum_processors_closed_form(once, report):
    def sweep():
        for k, gamma, n, expected in (
            (0.5, 0.0, 64, 1),
            (2.5, 0.0, 64, 3),
            (1.0, 0.5, 64, 9),     # ⌊√64⌋ + 1
            (1.0, 0.5, 256, 17),   # ⌊√256⌋ + 1
        ):
            law = PolynomialArrivalLaw(n=n, k=k, gamma=gamma, beta=1.0)
            p_min = minimum_processors(law, 1)
            report.add(k=k, gamma=gamma, n=n, p_min=p_min, closed_form=expected)
            assert p_min == expected

    once(sweep)


@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_e17_speedup(benchmark, report, p):
    """Wall-clock of the kernel run plus the simulated speedup curve
    (k = 0.5 < 1, so strict termination exists at every p)."""
    law = PolynomialArrivalLaw(n=512, k=0.5, gamma=0.0, beta=1.0)

    def run():
        return run_parallel_dalgorithm(
            PrefixSumSolver, law, data=lambda j: 1, p=p, horizon=20_000
        )

    result = benchmark(run)
    assert result.terminated
    report.add(p=p, termination_t=result.termination_time,
               items=result.items_processed)
