"""E4: Theorem 3.3 — closure of timed ω-languages under the five
operations, exercised and benched on generated language families.

Expected shape: all closure properties hold on every sampled word; the
operation costs are dominated by Definition 3.5 merging, which is
linear in the expanded window.
"""

import random

import pytest

from repro.words import (
    FiniteLanguage,
    TimedWord,
    Trilean,
    concat,
)


def _family(tag: str, count: int = 6):
    words = [
        TimedWord.lasso([(f"{tag}{i}", 0)], [(f"{tag}", i + 1)], shift=i + 1)
        for i in range(count)
    ]
    return FiniteLanguage(words, name=f"L_{tag}")


@pytest.fixture
def languages():
    return _family("a"), _family("b")


def test_e4_boolean_closure(benchmark, report, languages):
    """∪, ∩, ¬ on finite well-behaved families."""
    la, lb = languages

    def closure_check():
        rng = random.Random(0)
        union = la | lb
        inter = la & lb
        comp = ~la
        hits = 0
        for _ in range(20):
            w = union.sample(rng)
            assert union.contains(w)
            assert comp.contains(w) != la.contains(w)
            hits += 1
        return hits

    assert benchmark(closure_check) == 20
    report.add(op="union/intersection/complement", samples=20, closed=True)


def test_e4_concat_closure(benchmark, report, languages):
    """L₁·L₂ members are valid (monotone) timed words — the property
    naive concatenation loses."""
    la, lb = languages

    def concat_check():
        rng = random.Random(1)
        lab = la.concatenate(lb)
        ok = 0
        for _ in range(20):
            w = lab.sample(rng)
            assert w.is_valid() is not Trilean.FALSE
            ok += 1
        return ok

    assert benchmark(concat_check) == 20
    report.add(op="concatenation (Def 3.5)", samples=20, closed=True)


def test_e4_kleene_closure(benchmark, report):
    """Definition 3.6 closure with the paper's L⁰ = ∅ convention."""
    base = FiniteLanguage(
        [TimedWord.finite([("a", 0), ("b", 2)])], name="L"
    )

    def star_check():
        star = base.kleene(max_power=5)
        rng = random.Random(2)
        ok = 0
        for _ in range(10):
            w = star.sample(rng)
            assert star.contains(w)
            ok += 1
        assert not star.contains(TimedWord.finite([]))  # ε ∉ L*
        return ok

    assert benchmark(star_check) == 10
    report.add(op="Kleene closure (Def 3.6)", samples=10, closed=True)


@pytest.mark.parametrize("size", [8, 32, 128])
def test_e4_concat_cost_scaling(benchmark, report, size):
    """Definition 3.5 merge cost on growing finite words."""
    a = TimedWord.finite([(f"a{i}", 2 * i) for i in range(size)])
    b = TimedWord.finite([(f"b{i}", 2 * i + 1) for i in range(size)])
    merged = benchmark(concat, a, b)
    assert len(merged) == 2 * size
    report.add(operand_len=size, merged_len=2 * size)
