"""Commit-protocol throughput under faults, monitored and judged.

The ISSUE-9 workload bench: timed 2PC/3PC transactions from
:mod:`repro.txn` pushed through the verification stack, measuring

* **crash-rate sweep** — transactions/sec for 2PC and 3PC at
  increasing crash rates, with the online :class:`SessionMux`
  monitors *detached* (pure simulation) and *attached* (every
  decision channel streamed through the compiled-TBA monitors) — the
  monitoring overhead on a realistic heavy-traffic workload;
* **offline backends** — the same recorded corpus judged through
  ``decide_many`` on the serial and shards backends (words/sec,
  verdicts pinned identical);
* **three-path cross-check** — offline-exact vs online vs batched on
  both backends over a faulted corpus, mismatches pinned to zero.

Rows land in the ``--bench-json`` capture (``BENCH_txn.json``; the
`txn-smoke` CI job asserts the sweep rows exist).  Set
``REPRO_BENCH_QUICK=1`` for CI-sized parameters.  The documented
transactions/sec figure is the ``txns_per_sec`` field of the
crash-rate sweep rows (see docs/performance.md).
"""

import time

from conftest import quick_sized

from repro.txn import (
    TxnConfig,
    atomicity_ok,
    corpus,
    corpus_stats,
    corpus_verdicts,
    cross_check,
    offline_batched,
    offline_exact,
    online_verdicts,
)

N_TXNS = quick_sized(200, 15)
N_CHECK = quick_sized(60, 10)
CRASH_RATES = quick_sized((0.0, 0.2, 0.4), (0.0, 0.4))
PROTOCOLS = ("2pc", "3pc")


def cfg_at(crash_rate: float) -> TxnConfig:
    return TxnConfig(
        n_participants=3,
        d_lo=1,
        d_hi=2,
        abort_vote_rate=0.05,
        participant_crash_rate=crash_rate / 2,
        coordinator_crash_rate=crash_rate,
    )


def _warm_monitors() -> None:
    """Build the property automata/analyses once, outside the timers
    (an lru-cached one-time cost shared by every cell of the sweep)."""
    for proto in PROTOCOLS:
        online_verdicts(corpus(proto, cfg_at(0.0), 1))


def test_txn_crash_rate_sweep(once, report, bench_record):
    """2PC vs 3PC × crash rate × monitors detached/attached."""

    def sweep():
        _warm_monitors()
        rows = []
        for proto in PROTOCOLS:
            for rate in CRASH_RATES:
                cfg = cfg_at(rate)
                t0 = time.perf_counter()
                runs = corpus(proto, cfg, N_TXNS, base_seed=int(rate * 1000))
                detached_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                verdicts, stream_stats = online_verdicts(runs)
                attached_s = detached_s + (time.perf_counter() - t0)
                stats = corpus_stats(runs)
                judged = corpus_verdicts(runs, verdicts)
                rows.append(
                    {
                        "protocol": proto,
                        "crash_rate": rate,
                        "runs": N_TXNS,
                        "txns_per_sec": round(N_TXNS / detached_s, 1),
                        "monitored_txns_per_sec": round(N_TXNS / attached_s, 1),
                        "monitor_sessions": stream_stats["sessions"],
                        "crashes": stats["crashes"],
                        "outcomes": stats["outcomes"],
                        "atomic": judged["atomic"],
                        "all_decided": judged["all_decided"],
                    }
                )
                # Atomicity must survive every cell of the sweep
                # (crash-only faults; loss is exercised elsewhere).
                assert judged["atomic"] == N_TXNS
        return rows

    for row in once(sweep):
        report.add(**row)
        bench_record(mode="crash-sweep", **row)


def test_txn_offline_backends(once, report, bench_record):
    """The recorded corpus judged by ``decide_many``: serial vs shards."""

    def judge():
        runs = []
        for proto in PROTOCOLS:
            runs += corpus(proto, cfg_at(0.2), N_TXNS // 2, base_seed=77)
        rows = []
        verdicts = {}
        for backend in ("serial", "shards"):
            t0 = time.perf_counter()
            verdicts[backend] = offline_batched(runs, backend=backend, workers=2)
            dt = time.perf_counter() - t0
            rows.append(
                {
                    "backend": backend,
                    "words": len(verdicts[backend]),
                    "words_per_sec": round(len(verdicts[backend]) / dt, 1),
                }
            )
        assert verdicts["serial"] == verdicts["shards"]
        return rows

    for row in once(judge):
        report.add(**row)
        bench_record(mode="offline-backends", **row)


def test_txn_three_path_cross_check(once, report, bench_record):
    """Offline-exact, online, serial and shards batched: one story."""

    def check():
        cfg = TxnConfig(
            n_participants=2,
            d_lo=1,
            d_hi=2,
            abort_vote_rate=0.1,
            participant_crash_rate=0.2,
            coordinator_crash_rate=0.3,
            loss_rate=0.05,
        )
        runs = corpus("2pc", cfg, N_CHECK) + corpus("3pc", cfg, N_CHECK, base_seed=500)
        t0 = time.perf_counter()
        result = cross_check(runs, backends=("serial", "shards"))
        dt = time.perf_counter() - t0
        assert result.ok, result.mismatches[:5]
        exact = offline_exact(runs)
        agreed = corpus_verdicts(runs, exact)
        return {
            "runs": result.runs,
            "checks": result.checks,
            "mismatches": len(result.mismatches),
            "checks_per_sec": round(result.checks / dt, 1),
            "atomic": agreed["atomic"],
            "atomic_oracle": sum(1 for r in runs if atomicity_ok(r)),
        }

    row = once(check)
    assert row["atomic"] == row["atomic_oracle"]
    report.add(**row)
    bench_record(mode="cross-check", **row)
