"""Shard runtime: stream scaling, session capacity, warm decide pool.

The paper's Section 6 parallel model trades communication cost against
parallel speedup; this module measures that trade for the shard
runtime of :mod:`repro.shard`:

* **stream scaling** — the same session traffic pushed through a
  ``ShardRouter`` at 1, 2, and 4 shards (events/sec, verdicts pinned
  identical to a single in-process ``SessionMux``);
* **session capacity** — a wide session table (100k sessions at full
  size) spread over 4 shards, the bounded-per-process-memory story;
* **decide: shards vs serial vs fork** — one large ``decide_many``
  batch through all three backends; the persistent pool's warm
  compiled acceptors must *beat* serial words/sec where the
  fork-per-batch pool historically lost to it, and both pools must
  stay bit-identical to serial.

Rows land in the ``--bench-json`` capture (``BENCH_shards.json``; the
`shard-smoke` CI job asserts the shards rows exist).  Set
``REPRO_BENCH_QUICK=1`` for CI-sized parameters.
"""

import os
import random
import time

import pytest
from conftest import BENCH_QUICK, quick_sized

from repro.automata import TimedBuchiAutomaton, TimedTransition
from repro.engine import decide_many
from repro.kernel import Le
from repro.shard import ShardRouter, shared_pool, shutdown_pool
from repro.stream import SessionMux
from repro.words import TimedWord

N_SESSIONS = quick_sized(400, 40)
N_EVENTS = quick_sized(40_000, 2_000)
BIG_SESSIONS = quick_sized(100_000, 2_000)
N_WORDS = quick_sized(512, 64)
HORIZON = quick_sized(400, 200)


def bounded_gap_tba(bound=2):
    return TimedBuchiAutomaton(
        "a",
        ["s"],
        "s",
        [TimedTransition.make("s", "s", "a", resets=["x"], guard=Le("x", bound))],
        ["x"],
        ["s"],
    )


def traffic(sessions, events, seed=11):
    rng = random.Random(seed)
    clock = {f"s{i}": 0 for i in range(sessions)}
    names = list(clock)
    out = []
    for _ in range(events):
        name = rng.choice(names)
        clock[name] += rng.choice([1, 1, 2, 2, 5])
        out.append((name, "a", clock[name]))
    return out


def make_words(n):
    words = []
    for i in range(n):
        if i % 2 == 0:
            words.append(TimedWord.lasso([], [("a", 1)], shift=1))
        else:
            words.append(TimedWord.lasso([("a", 1), ("a", 6)], [("a", 7)], shift=1))
    return words


def test_stream_shard_scaling(once, report, bench_record):
    """1 -> 2 -> 4 shards over identical traffic, verdicts pinned."""
    tba = bounded_gap_tba()
    events = traffic(N_SESSIONS, N_EVENTS)
    reference = SessionMux(tba)
    t0 = time.perf_counter()
    reference.ingest_batch(events)
    single_s = time.perf_counter() - t0
    want = reference.verdicts()

    def sweep():
        rows = []
        for n_shards in (1, 2, 4):
            with ShardRouter(tba, n_shards=n_shards, batch_events=512) as router:
                t0 = time.perf_counter()
                router.ingest_batch(events)
                router.sync()
                elapsed = time.perf_counter() - t0
                assert router.verdicts() == want
            rows.append((n_shards, elapsed))
        return rows

    rows = once(sweep)
    single_eps = round(N_EVENTS / max(single_s, 1e-9), 1)
    bench_record(
        mode="stream-single-mux",
        sessions=N_SESSIONS,
        events=N_EVENTS,
        events_per_sec=single_eps,
    )
    report.add(shards=0, events=N_EVENTS, eps=single_eps, identical=True)
    for n_shards, elapsed in rows:
        eps = round(N_EVENTS / max(elapsed, 1e-9), 1)
        bench_record(
            mode=f"stream-shards:{n_shards}",
            shards=n_shards,
            sessions=N_SESSIONS,
            events=N_EVENTS,
            events_per_sec=eps,
        )
        report.add(shards=n_shards, events=N_EVENTS, eps=eps, identical=True)


def test_wide_session_table(once, report, bench_record):
    """100k concurrent sessions spread over 4 shards (full size)."""
    tba = bounded_gap_tba()
    # two in-bound events per session, session names interleaved
    events = []
    for t in (1, 2):
        events.extend((f"w{i}", "a", t) for i in range(BIG_SESSIONS))

    def run():
        with ShardRouter(tba, n_shards=4, batch_events=2048) as router:
            t0 = time.perf_counter()
            router.ingest_batch(events)
            router.sync()
            elapsed = time.perf_counter() - t0
            assert router.session_count == BIG_SESSIONS
            stats = router.stats()
            assert stats["active"] == BIG_SESSIONS
        return elapsed

    elapsed = once(run)
    eps = round(len(events) / max(elapsed, 1e-9), 1)
    bench_record(
        mode="stream-shards-wide",
        shards=4,
        sessions=BIG_SESSIONS,
        events=len(events),
        events_per_sec=eps,
    )
    report.add(sessions=BIG_SESSIONS, events=len(events), eps=eps)


def test_decide_shards_beats_serial(once, report, bench_record):
    """The warm pool must win where the fork-per-batch pool lost."""
    shutdown_pool()
    tba = bounded_gap_tba()
    words = make_words(N_WORDS)
    kwargs = dict(horizon=HORIZON, strategy="f-rate", seed=7)
    shared_pool(4)  # spawn cost paid once, outside the timed region
    decide_many(tba, make_words(16), workers=4, backend="shards", **kwargs)

    def run():
        t0 = time.perf_counter()
        serial = decide_many(tba, words, backend="serial", **kwargs)
        t1 = time.perf_counter()
        fork = decide_many(tba, words, workers=4, backend="fork", **kwargs)
        t2 = time.perf_counter()
        shards = decide_many(tba, words, workers=4, backend="shards", **kwargs)
        t3 = time.perf_counter()
        assert fork == serial
        assert shards == serial  # bit-identical under fan-out
        return t1 - t0, t2 - t1, t3 - t2

    try:
        serial_s, fork_s, shards_s = once(run)
    finally:
        shutdown_pool()
    serial_wps = round(N_WORDS / max(serial_s, 1e-9), 1)
    fork_wps = round(N_WORDS / max(fork_s, 1e-9), 1)
    shards_wps = round(N_WORDS / max(shards_s, 1e-9), 1)
    cores = os.cpu_count() or 1
    bench_record(
        mode="decide-shards-vs-serial",
        words=N_WORDS,
        workers=4,
        cores=cores,
        serial_words_per_sec=serial_wps,
        fork_words_per_sec=fork_wps,
        shards_words_per_sec=shards_wps,
        shards_speedup=round(shards_wps / max(serial_wps, 1e-9), 2),
        shards_vs_fork=round(shards_wps / max(fork_wps, 1e-9), 2),
    )
    report.add(
        cores=cores,
        serial_wps=serial_wps,
        fork_wps=fork_wps,
        shards_wps=shards_wps,
        identical=True,
    )
    if not BENCH_QUICK:
        # The warm pool must always beat the fork-per-batch pool (the
        # per-call fork+compile cost it exists to amortize) ...
        assert shards_wps > fork_wps
        # ... and must beat the serial loop wherever there is real
        # parallelism to win (a single-core box can only show the pool's
        # overhead, not its speedup — the row records `cores` for that).
        if cores >= 2:
            assert shards_wps > serial_wps


def test_rebalance_cost(once, report, bench_record):
    """Elasticity price: grow 2->4 mid-stream, verdicts pinned."""
    tba = bounded_gap_tba()
    events = traffic(N_SESSIONS, N_EVENTS // 2)
    reference = SessionMux(tba)
    reference.ingest_batch(events + events_tail(events))
    want = reference.verdicts()

    def run():
        with ShardRouter(tba, n_shards=2, batch_events=512) as router:
            router.ingest_batch(events)
            t0 = time.perf_counter()
            summary = router.rebalance(4)
            elapsed = time.perf_counter() - t0
            router.ingest_batch(events_tail(events))
            assert router.verdicts() == want
        return elapsed, len(summary["moved"])

    elapsed, moved = once(run)
    bench_record(
        mode="stream-rebalance",
        sessions=N_SESSIONS,
        moved=moved,
        rebalance_ms=round(elapsed * 1000, 3),
    )
    report.add(moved=moved, rebalance_ms=round(elapsed * 1000, 3))


def events_tail(events):
    """A second traffic burst continuing each session's clock."""
    last = {}
    for name, _sym, t in events:
        last[name] = t
    return [(name, "a", last[name] + 1 + i % 2) for i, name in enumerate(sorted(last))]
