"""Multi-query ablation: one fused QueryPlan vs k per-query muxes.

The tentpole claim behind :class:`repro.query.plan.QueryPlan` is a
*stepping* one: k phase-chain queries over the same streams cost one
shared product-table lookup per event instead of k separate automaton
steps.  This bench measures exactly that, on the workload the plan
exists for — a 500-session :class:`~repro.stream.session.SessionMux`
under chunked batch ingestion, with five request/response queries that
share their ``req``-then-``rsp`` chain and differ only in the response
window:

* ``per-query`` — the baseline: k independent muxes (one per query,
  each on its own compiled automaton) all fed every chunk;
* ``planned`` — one mux over the fused plan; per-session
  ``query_verdicts()`` deliver the same k verdict streams.

Both paths run the identical event sequence and the recorded rows
carry a cross-check (``mismatches`` must be 0: the fused per-channel
verdicts equal the independent monitors' headline verdicts for every
session).  The recorded ``speedup`` is the per-query/planned wall-time
ratio; the plan's sharing ledger (``plan_configs`` vs
``sum_per_query_configs``) rides along so the state-for-stepping trade
is visible next to the win it buys.  Rows land in the ``--bench-json``
capture (``BENCH_query.json`` in the repo root; the query-smoke CI job
asserts a fresh quick-sized speedup).  Set ``REPRO_BENCH_QUICK=1`` for
CI-sized parameters.
"""

import time

import pytest
from conftest import quick_sized

from repro.query import Q, QueryPlan
from repro.stream import SessionMux, StreamVerdict

#: Response windows — one query per entry, all sharing the req→rsp chain.
WINDOWS = (4, 5, 6, 7, 8)
QUERIES = {
    f"rsp-within-{w}": Q.event("req").within(2).then("rsp").within(w).repeat()
    for w in WINDOWS
}
N_SESSIONS = quick_sized(500, 100)
ROUNDS = quick_sized(20, 6)
#: Chronons between rounds (req at t, rsp at t+1, next req at t+3 — the
#: rhythm keeps every query's obligation alive, so neither path gets to
#: coast on absorbed-rejection freezes).
PERIOD = 3

PLAN = QueryPlan(QUERIES)
TBAS = {name: q.tba() for name, q in QUERIES.items()}


def chunks():
    """ROUNDS chunks of (name, symbol, t) events, one req/rsp pair per
    session per round — the chunked-batch shape ``ingest_batch`` waves
    across sessions."""
    out = []
    for r in range(ROUNDS):
        t = PERIOD * r
        batch = []
        for s in range(N_SESSIONS):
            name = f"s{s}"
            batch.append((name, "req", t))
            batch.append((name, "rsp", t + 1))
        out.append(batch)
    return out


CHUNKS = chunks()
N_EVENTS = sum(len(b) for b in CHUNKS)


def run_planned():
    mux = SessionMux(plan=PLAN)
    for batch in CHUNKS:
        mux.ingest_batch(batch)
    return mux


def run_per_query():
    muxes = {name: SessionMux(tba) for name, tba in TBAS.items()}
    for batch in CHUNKS:
        for mux in muxes.values():
            mux.ingest_batch(batch)
    return muxes


def _mismatches(planned_mux, per_query_muxes) -> int:
    """Sessions whose fused per-channel verdicts differ from the
    independent monitors' — the ablation's built-in differential."""
    bad = 0
    for s in range(N_SESSIONS):
        name = f"s{s}"
        fused = planned_mux.monitor(name).query_verdicts()
        single = {
            q: mux.monitor(name).verdict for q, mux in per_query_muxes.items()
        }
        if fused != single:
            bad += 1
    return bad


def test_per_query_baseline(benchmark, report, bench_record):
    """k independent muxes, every chunk fed to each — k steps/event."""
    muxes = benchmark(run_per_query)
    for mux in muxes.values():
        assert mux.stats()["active"] == N_SESSIONS
    assert muxes[f"rsp-within-{WINDOWS[0]}"].monitor("s0").verdict is (
        StreamVerdict.ACCEPTING
    )
    eps = round(
        N_EVENTS * len(QUERIES) / max(benchmark.stats.stats.mean, 1e-9), 1
    )
    bench_record(
        mode="per-query",
        queries=len(QUERIES),
        sessions=N_SESSIONS,
        events=N_EVENTS,
        monitor_events=N_EVENTS * len(QUERIES),
        events_per_sec=eps,
    )
    report.add(mode="per-query", sessions=N_SESSIONS, eps=eps)


def test_planned_fused(benchmark, report, bench_record):
    """One fused product mux — one shared table lookup per event."""
    if PLAN.compiled is None:
        pytest.skip("compiled stepping unavailable (numpy absent/disabled)")
    mux = benchmark(run_planned)
    assert mux.stats()["active"] == N_SESSIONS
    verdicts = mux.monitor("s0").query_verdicts()
    assert set(verdicts) == set(QUERIES)
    assert all(v is StreamVerdict.ACCEPTING for v in verdicts.values())
    eps = round(N_EVENTS / max(benchmark.stats.stats.mean, 1e-9), 1)
    stats = PLAN.stats()
    bench_record(
        mode="planned",
        queries=len(QUERIES),
        sessions=N_SESSIONS,
        events=N_EVENTS,
        events_per_sec=eps,
        plan_configs=stats["plan_configs"],
        sum_per_query_configs=stats["sum_per_query_configs"],
        config_ratio=round(stats["config_ratio"], 3),
    )
    report.add(mode="planned", sessions=N_SESSIONS, eps=eps)


def test_ablation_speedup(benchmark, report, bench_record):
    """The committed claim: fused plan ≥ 2x the per-query baseline on
    the 500-session workload, with a built-in verdict cross-check."""
    if PLAN.compiled is None:
        pytest.skip("compiled stepping unavailable (numpy absent/disabled)")
    # Warm both paths (shared artifacts, session-table allocation) and
    # cross-check the verdicts before timing anything.
    planned_mux = run_planned()
    per_query_muxes = run_per_query()
    mismatches = _mismatches(planned_mux, per_query_muxes)
    assert mismatches == 0

    benchmark(run_planned)
    planned_s = benchmark.stats.stats.mean
    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        run_per_query()
    per_query_s = (time.perf_counter() - t0) / reps
    speedup = per_query_s / max(planned_s, 1e-9)
    bench_record(
        mode="ablation",
        queries=len(QUERIES),
        sessions=N_SESSIONS,
        events=N_EVENTS,
        planned_s=round(planned_s, 6),
        per_query_s=round(per_query_s, 6),
        speedup=round(speedup, 2),
        mismatches=mismatches,
    )
    report.add(
        mode="ablation", speedup=round(speedup, 2), mismatches=mismatches
    )
    # A loose floor for CI noise; the committed full-size run shows ≥2x.
    assert speedup >= 1.2
