"""E6: Section 4.2 — the data-accumulating paradigm.

Sweeps the arrival-law family f(n,t) = n + k·n^γ·t^β over β and n and
reports termination times from three independent artifacts: the
closed-form characterization, the numeric fixed-point solver, and the
kernel simulation.

Expected shape (the published d-algorithm characterization):
* β < 1 — always terminates; termination time grows superlinearly in n;
* β = 1 — terminates iff c·k·n^γ < 1 (sim time ≈ c·n/(1 − ck·n^γ));
* β > 1 or ck ≥ 1 — diverges (DNF rows).
"""

import pytest

from repro.dataacc import (
    InsertionSortSolver,
    PolynomialArrivalLaw,
    run_dalgorithm,
    termination_time,
)

HORIZON = 60_000


def test_e6_beta_sweep(once, report):
    """Termination frontier across β at fixed n = 256, k = 0.5."""

    def sweep():
        for beta in (0.5, 0.8, 1.0, 1.5, 2.0):
            law = PolynomialArrivalLaw(n=256, k=0.5, gamma=0.0, beta=beta)
            closed = law.terminates_asymptotically(1)
            numeric = termination_time(law, 1, horizon=HORIZON)
            sim = run_dalgorithm(
                InsertionSortSolver(), law, data=lambda j: j % 97, horizon=HORIZON
            )
            report.add(
                beta=beta,
                closed_form="terminates" if closed else "diverges",
                numeric_t=numeric if numeric is not None else "DNF",
                simulated_t=sim.termination_time if sim.terminated else "DNF",
            )
            # the three artifacts agree
            assert (numeric is not None) == sim.terminated
            if beta != 1.0:
                assert closed == sim.terminated

    once(sweep)


def test_e6_critical_rate_frontier(once, report):
    """β = 1: the c·k < 1 threshold (c = 1)."""

    def sweep():
        for k in (0.25, 0.5, 0.75, 0.9, 1.0, 1.25):
            law = PolynomialArrivalLaw(n=64, k=k, gamma=0.0, beta=1.0)
            sim = run_dalgorithm(
                InsertionSortSolver(), law, data=lambda j: j, horizon=20_000
            )
            predicted = law.terminates_asymptotically(1)
            report.add(
                k=k,
                predicted="terminates" if predicted else "diverges",
                simulated_t=sim.termination_time if sim.terminated else "DNF",
            )
            assert sim.terminated == predicted

    once(sweep)


@pytest.mark.parametrize("n", [256, 1024, 4096, 16384])
def test_e6_termination_scaling(benchmark, report, n):
    """Termination time vs initial amount n (β = 1, ck = 0.5):
    expected t ≈ 2n."""
    law = PolynomialArrivalLaw(n=n, k=0.5, gamma=0.0, beta=1.0)
    t = benchmark(termination_time, law, 1, HORIZON)
    assert t is not None
    report.add(n=n, termination_t=t, ratio=round(t / n, 3))
    assert 1.8 <= t / n <= 2.2


@pytest.mark.parametrize("beta", [0.5, 0.9])
def test_e6_simulation_cost(benchmark, beta):
    """Full kernel simulation cost for a terminating run."""
    law = PolynomialArrivalLaw(n=128, k=0.5, gamma=0.0, beta=beta)

    def run():
        return run_dalgorithm(
            InsertionSortSolver(), law, data=lambda j: j % 31, horizon=HORIZON
        )

    result = benchmark(run)
    assert result.terminated
